package hierdrl_test

import (
	"bytes"
	"reflect"
	"testing"

	"hierdrl"
)

// scenarioTestConfig returns the reduced operating point the scenario suite
// runs at: least-loaded dispatch (bitwise sharded==strict, see
// TestShardedMatchesStrict) over a 60s fixed-timeout local tier.
func scenarioTestConfig(sc hierdrl.Scenario) hierdrl.Config {
	cfg := hierdrl.Config{
		Name:            "scenario-" + sc.Name,
		Seed:            1,
		Alloc:           hierdrl.AllocLeastLoaded,
		DPM:             hierdrl.DPMFixedTimeout,
		FixedTimeoutSec: 60,
	}
	sc.ApplyTo(&cfg)
	return cfg
}

// TestScenarioBitwiseAcrossShards pins the scenario determinism contract for
// every registered scenario at a reduced size: the Summary is bitwise
// identical at P in {1, 2, 4} and run-to-run at fixed P. This is the
// `make scenario-smoke` gate.
func TestScenarioBitwiseAcrossShards(t *testing.T) {
	for _, name := range hierdrl.Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := hierdrl.LookupScenario(name)
			if !ok {
				t.Fatalf("registered scenario %q not resolvable", name)
			}
			sc = sc.Scaled(16, 400)
			cfg := scenarioTestConfig(sc)
			var ref *hierdrl.Result
			for _, p := range []int{1, 1, 2, 4} { // P=1 twice: run-to-run gate
				src, err := sc.Source(cfg.Seed)
				if err != nil {
					t.Fatalf("source: %v", err)
				}
				res, err := hierdrl.RunSource(cfg, src, hierdrl.WithShards(p))
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Summary, ref.Summary) {
					t.Errorf("P=%d summary diverged from strict:\n got %+v\nwant %+v",
						p, res.Summary, ref.Summary)
				}
			}
		})
	}
}

// TestScenarioCSVRoundTrip pins the tracegen -scenario pathway: a scenario
// workload written to CSV and replayed through SubmitTrace produces the
// exact run of the streamed source — the CSV encoding is value-preserving
// and the batch and streaming ingestion paths are equivalent, bitwise.
func TestScenarioCSVRoundTrip(t *testing.T) {
	for _, name := range []string{"heavytail", "mixed-het"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := hierdrl.LookupScenario(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			sc = sc.Scaled(12, 300)
			cfg := scenarioTestConfig(sc)

			src, err := sc.Source(cfg.Seed)
			if err != nil {
				t.Fatalf("source: %v", err)
			}
			streamed, err := hierdrl.RunSource(cfg, src)
			if err != nil {
				t.Fatalf("streamed run: %v", err)
			}

			// tracegen -scenario: write the same workload to CSV...
			gen, err := sc.Source(cfg.Seed)
			if err != nil {
				t.Fatalf("source: %v", err)
			}
			var buf bytes.Buffer
			if err := hierdrl.WriteTraceCSVStream(&buf, gen.Next); err != nil {
				t.Fatalf("write csv: %v", err)
			}
			// ...replay it through the batch SubmitTrace path.
			tr, err := hierdrl.ReadTraceCSV(&buf)
			if err != nil {
				t.Fatalf("read csv: %v", err)
			}
			replayed, err := hierdrl.Run(cfg, tr)
			if err != nil {
				t.Fatalf("replayed run: %v", err)
			}
			if !reflect.DeepEqual(replayed.Summary, streamed.Summary) {
				t.Errorf("CSV replay diverged from streamed source:\n got %+v\nwant %+v",
					replayed.Summary, streamed.Summary)
			}
		})
	}
}

// TestHomogeneousClassesBitwiseIdentical pins the heterogeneity layer's
// compatibility guarantee: a single server class at speed 1.0 with the
// default power curve is the homogeneous cluster, bit for bit.
func TestHomogeneousClassesBitwiseIdentical(t *testing.T) {
	m := 8
	tr := hierdrl.SyntheticTraceForCluster(500, m, 7)

	base := hierdrl.RoundRobin(m)
	base.Name = "least-loaded"
	base.Alloc = hierdrl.AllocLeastLoaded
	base.DPM = hierdrl.DPMFixedTimeout
	base.FixedTimeoutSec = 60
	plain, err := hierdrl.Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}

	classed := base
	classed.Cluster = hierdrl.DefaultClusterConfig(m)
	classed.Cluster.Classes = []hierdrl.ServerClass{{Name: "all", Count: m, Speed: 1.0}}
	viaClasses, err := hierdrl.Run(classed, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Summary, viaClasses.Summary) {
		t.Errorf("single-class speed-1.0 cluster diverged from homogeneous:\n got %+v\nwant %+v",
			viaClasses.Summary, plain.Summary)
	}
	if plain.TotalWakeups != viaClasses.TotalWakeups || plain.TotalShutdowns != viaClasses.TotalShutdowns {
		t.Errorf("transition counts diverged: %d/%d vs %d/%d",
			viaClasses.TotalWakeups, viaClasses.TotalShutdowns, plain.TotalWakeups, plain.TotalShutdowns)
	}
}

// TestHeterogeneousSpeedShortensService sanity-checks the speed semantics
// end to end: a uniformly faster cluster completes the same workload with
// strictly lower accumulated latency.
func TestHeterogeneousSpeedShortensService(t *testing.T) {
	m := 8
	tr := hierdrl.SyntheticTraceForCluster(400, m, 11)
	base := hierdrl.RoundRobin(m)
	base.Alloc = hierdrl.AllocLeastLoaded

	slow := base
	slowRes, err := hierdrl.Run(slow, tr)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Cluster = hierdrl.DefaultClusterConfig(m)
	fast.Cluster.Classes = []hierdrl.ServerClass{{Name: "turbo", Count: m, Speed: 2.0}}
	fastRes, err := hierdrl.Run(fast, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.Summary.AccLatencySec >= slowRes.Summary.AccLatencySec {
		t.Errorf("2x faster cluster did not cut accumulated latency: %v vs %v",
			fastRes.Summary.AccLatencySec, slowRes.Summary.AccLatencySec)
	}
}

// TestScenarioScaledLayout pins Scaled's class redistribution: counts always
// sum to the new M and every class keeps at least one machine when possible.
func TestScenarioScaledLayout(t *testing.T) {
	sc, ok := hierdrl.LookupScenario("mixed-het")
	if !ok {
		t.Fatal("mixed-het not registered")
	}
	for _, m := range []int{3, 7, 16, 30, 100} {
		scaled := sc.Scaled(m, 100)
		total := 0
		for _, c := range scaled.Classes {
			if c.Count < 1 {
				t.Errorf("m=%d: class %q scaled to %d machines", m, c.Name, c.Count)
			}
			total += c.Count
		}
		if total != m {
			t.Errorf("m=%d: class counts sum to %d", m, total)
		}
		if err := scaled.Validate(); err != nil {
			t.Errorf("m=%d: scaled scenario invalid: %v", m, err)
		}
	}
}

// TestRegistryListers pins the discovery surface behind hiersim -list: the
// listers return sorted names including every built-in.
func TestRegistryListers(t *testing.T) {
	contains := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	sorted := func(names []string) bool {
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				return false
			}
		}
		return true
	}

	var allocs []string
	for _, a := range hierdrl.Allocators() {
		allocs = append(allocs, string(a))
	}
	var pms []string
	for _, p := range hierdrl.PowerManagers() {
		pms = append(pms, string(p))
	}
	scens := hierdrl.Scenarios()

	if !sorted(allocs) || !sorted(pms) || !sorted(scens) {
		t.Errorf("lister output not sorted: %v %v %v", allocs, pms, scens)
	}
	for _, want := range []string{"round-robin", "random", "least-loaded", "pack-fit", "drl"} {
		if !contains(allocs, want) {
			t.Errorf("Allocators() missing %q: %v", want, allocs)
		}
	}
	for _, want := range []string{"steady", "diurnal", "flashcrowd", "heavytail",
		"burst-mmpp", "ramp", "mixed-het", "scale-10k-diurnal"} {
		if !contains(scens, want) {
			t.Errorf("Scenarios() missing %q: %v", want, scens)
		}
	}
	if len(scens) < 8 {
		t.Errorf("want >= 8 registered scenarios, got %d", len(scens))
	}
}
