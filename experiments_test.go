package hierdrl

import (
	"math"
	"testing"
)

func tinyScale(m int) Scale {
	return Scale{Jobs: 400, WarmupJobs: 150, Seed: 3, ClusterM: m}
}

func TestScaleValidate(t *testing.T) {
	if err := FullScale(30).Validate(); err != nil {
		t.Fatalf("FullScale invalid: %v", err)
	}
	if err := BenchScale(40).Validate(); err != nil {
		t.Fatalf("BenchScale invalid: %v", err)
	}
	bad := []Scale{
		{Jobs: 0, ClusterM: 30},
		{Jobs: 10, WarmupJobs: -1, ClusterM: 30},
		{Jobs: 10, ClusterM: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scale %d accepted", i)
		}
	}
}

func TestRunComparisonTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("three end-to-end runs; skip with -short")
	}
	cmp, err := RunComparison(4, tinyScale(4), 100)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	rows := cmp.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows %d want 3", len(rows))
	}
	names := []string{"round-robin", "drl-only", "hierarchical"}
	for i, s := range rows {
		if s.Policy != names[i] {
			t.Fatalf("row %d policy %q want %q", i, s.Policy, names[i])
		}
		if s.Jobs != 400 {
			t.Fatalf("%s completed %d jobs want 400", s.Policy, s.Jobs)
		}
		if s.EnergykWh <= 0 {
			t.Fatalf("%s energy %v", s.Policy, s.EnergykWh)
		}
	}
	if len(cmp.RoundRobin.Checkpoints) == 0 {
		t.Fatal("missing checkpoints")
	}
}

func TestRunTradeoffTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("many end-to-end runs; skip with -short")
	}
	sc := tinyScale(4)
	curves, err := RunTradeoff(4, sc, []float64{0.3, 0.7})
	if err != nil {
		t.Fatalf("RunTradeoff: %v", err)
	}
	for _, pts := range curves.All() {
		if len(pts) != 2 {
			t.Fatalf("curve has %d points want 2", len(pts))
		}
		for _, p := range pts {
			if p.AvgLatencySec <= 0 || p.AvgEnergyJPerJob <= 0 {
				t.Fatalf("degenerate point %+v", p)
			}
		}
	}
	// Validation paths.
	if _, err := RunTradeoff(4, sc, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := RunTradeoff(4, sc, []float64{1.5}); err == nil {
		t.Fatal("lambda out of range accepted")
	}
}

func TestRunPredictorComparisonTiny(t *testing.T) {
	scores, err := RunPredictorComparison(300, 1)
	if err != nil {
		t.Fatalf("RunPredictorComparison: %v", err)
	}
	if len(scores) != 4 {
		t.Fatalf("scores %d want 4", len(scores))
	}
	for _, s := range scores {
		if s.Samples == 0 {
			t.Fatalf("%s scored no samples", s.Name)
		}
		if math.IsNaN(s.RMSELog) || s.RMSELog <= 0 {
			t.Fatalf("%s RMSE %v", s.Name, s.RMSELog)
		}
	}
	if _, err := RunPredictorComparison(10, 1); err == nil {
		t.Fatal("tiny stream accepted")
	}
}

func TestRunAblationTiny(t *testing.T) {
	results, err := RunAblation(6, 30, []int{2, 3}, 1)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(results) != 6 { // 2 K values x 3 variants
		t.Fatalf("results %d want 6", len(results))
	}
	byKey := map[string]AblationResult{}
	for _, r := range results {
		if r.FinalLoss < 0 || math.IsNaN(r.FinalLoss) {
			t.Fatalf("%s K=%d loss %v", r.Variant, r.K, r.FinalLoss)
		}
		if r.Params <= 0 {
			t.Fatalf("%s K=%d params %d", r.Variant, r.K, r.Params)
		}
		byKey[r.Variant+string(rune('0'+r.K))] = r
	}
	// Weight sharing claim 2 of Sec. V-A: fewer parameters.
	if byKey["full2"].Params >= byKey["no-weight-sharing2"].Params {
		t.Fatal("weight sharing did not reduce parameter count")
	}
	// Error paths.
	if _, err := RunAblation(6, 0, []int{2}, 1); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := RunAblation(6, 10, []int{4}, 1); err == nil {
		t.Fatal("non-divisor K accepted")
	}
}

func TestParetoAndHypervolumeExports(t *testing.T) {
	pts := []TradeoffPoint{
		{Label: "a", AvgLatencySec: 1, AvgEnergyJPerJob: 3},
		{Label: "b", AvgLatencySec: 2, AvgEnergyJPerJob: 1},
		{Label: "c", AvgLatencySec: 2, AvgEnergyJPerJob: 5},
	}
	front := ParetoFrontOf(pts)
	if len(front) != 2 {
		t.Fatalf("front %d want 2", len(front))
	}
	if hv := HypervolumeOf(pts, 10, 10); hv <= 0 {
		t.Fatalf("hypervolume %v", hv)
	}
}

func TestRunFaultSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("eight end-to-end fault runs; skip with -short")
	}
	mttfs := []float64{2000, 20000}
	pts, err := RunFaultSweep(4, tinyScale(4), mttfs)
	if err != nil {
		t.Fatalf("RunFaultSweep: %v", err)
	}
	allocs := []AllocPolicy{AllocRoundRobin, AllocRandom, AllocLeastLoaded, AllocPackFit}
	if len(pts) != len(allocs)*len(mttfs) {
		t.Fatalf("points %d want %d", len(pts), len(allocs)*len(mttfs))
	}
	var totalFailures int64
	for i, p := range pts {
		if want := allocs[i/len(mttfs)]; p.Alloc != want {
			t.Fatalf("point %d alloc %q want %q (policy-major order)", i, p.Alloc, want)
		}
		if want := mttfs[i%len(mttfs)]; p.MTTFSec != want {
			t.Fatalf("point %d mttf %v want %v", i, p.MTTFSec, want)
		}
		if !(p.Summary.Availability > 0 && p.Summary.Availability <= 1) {
			t.Fatalf("point %d availability %v", i, p.Summary.Availability)
		}
		if p.Summary.EnergykWh <= 0 {
			t.Fatalf("point %d energy %v", i, p.Summary.EnergykWh)
		}
		totalFailures += p.Summary.Failures
	}
	if totalFailures == 0 {
		t.Fatal("no failures across the whole sweep; MTTFs too gentle for the test to bite")
	}

	if _, err := RunFaultSweep(4, tinyScale(4), nil); err == nil {
		t.Fatal("empty MTTF sweep accepted")
	}
	if _, err := RunFaultSweep(4, tinyScale(4), []float64{-1}); err == nil {
		t.Fatal("negative MTTF accepted")
	}
}
