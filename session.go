package hierdrl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"hierdrl/internal/cluster"
	"hierdrl/internal/fault"
	"hierdrl/internal/global"
	"hierdrl/internal/mat"
	"hierdrl/internal/metrics"
	"hierdrl/internal/policy"
	"hierdrl/internal/sim"
	"hierdrl/internal/telemetry"
	"hierdrl/internal/trace"
)

// ErrSessionClosed is returned after Close by every Session method that
// ingests, advances the clock, or finalizes (Submit, SubmitTrace, Step,
// StepUntil, Drain, Result). Read-only accessors (Snapshot, Now, Pending,
// Ingested, Completed) keep reporting the final state.
var ErrSessionClosed = errors.New("hierdrl: session closed")

// Observer bundles the session's lifecycle callbacks. It is a struct of
// function fields rather than an interface so unset hooks cost exactly one
// nil check on the hot path (no interface dispatch, no boxing) and callers
// implement only what they need.
//
// All callbacks run synchronously on the simulation path; they must not call
// back into the Session.
type Observer struct {
	// OnJobDone fires at each job completion, before the job object is
	// recycled into the session's pool — read what you need, do not retain j.
	OnJobDone func(t Time, j *ClusterJob)
	// OnCheckpoint fires when a Fig. 8/9 series point is recorded (requires
	// Config.CheckpointEvery > 0).
	OnCheckpoint func(cp Checkpoint)
	// OnModeTransition fires at every server power-mode change.
	OnModeTransition func(t Time, server int, from, to PowerState)
	// OnServerFail fires when a server crashes (fault injection), after its
	// jobs have been evicted into the retry path.
	OnServerFail func(t Time, server int)
	// OnServerRepair fires when a crashed server rejoins (cold).
	OnServerRepair func(t Time, server int)
	// OnJobRetry fires when the retry policy requeues an interrupted job:
	// attempt counts the job's interruptions so far (from 1), delaySec is
	// the backoff before it becomes eligible again. Dropped jobs fire no
	// callback; they surface as JobsLost in snapshots and the summary.
	OnJobRetry func(t Time, jobID, attempt int, delaySec float64)
	// OnServerDegrade fires on each fail-slow edge: factor is the server's
	// new effective speed multiplier (< 1 entering degradation, 1.0 on
	// restore to full speed).
	OnServerDegrade func(t Time, server int, factor float64)
	// OnDrainStart fires when a maintenance window opens on a server: its
	// queue has just been migrated and it accepts no new work while the
	// running jobs finish. The eventual power-off and rejoin surface as
	// OnServerFail/OnServerRepair like any other outage.
	OnDrainStart func(t Time, server int)
}

// sessionOptions collects NewSession's functional options.
type sessionOptions struct {
	obs        Observer
	ctx        context.Context
	expectJobs int
	shards     int
	autoPath   string
	autoEvery  int
	sketchOnly bool   // WithSketchOnly: constant-memory quantile sketches
	telAddr    string // WithTelemetry: HTTP observability endpoint address
	etraceCap  int    // WithEpochTrace: ring capacity (0 = off)
	etracePath string // WithEpochTraceFile: Chrome-trace dump at Close
}

// SessionOption configures NewSession.
type SessionOption func(*sessionOptions)

// WithObserver attaches lifecycle callbacks to the session.
func WithObserver(obs Observer) SessionOption {
	return func(o *sessionOptions) { o.obs = obs }
}

// WithContext attaches a cancellation context: Step, StepUntil and Drain
// return ctx.Err() once ctx is done (checked between events, every few
// hundred events on long drains). The default context never cancels and
// costs nothing per event.
func WithContext(ctx context.Context) SessionOption {
	return func(o *sessionOptions) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// WithExpectedJobs pre-sizes the ingestion queue and the metric sample
// buffers for n jobs, so a bounded stream runs allocation-free once warm.
func WithExpectedJobs(n int) SessionOption {
	return func(o *sessionOptions) { o.expectJobs = n }
}

// WithShards selects the session's execution tier. p <= 1 (the default) is
// the strict tier: one event lane, one goroutine, bitwise-reproducible
// against the historical engine. p >= 2 is the parallel tier: the cluster is
// partitioned into p contiguous server groups, each stepped on its own event
// lane by its own worker, synchronizing only at arrival decision epochs
// (see shard_engine.go and DESIGN.md §12 for the determinism contract:
// results at a fixed p are bitwise reproducible run to run and match the
// strict tier within documented tolerance). The DRL warmup pass, when
// configured, always runs strict — sharding applies to the measured session.
//
// A sharded session owns p worker goroutines; Close releases them.
func WithShards(p int) SessionOption {
	return func(o *sessionOptions) { o.shards = p }
}

// Session is the long-lived, streaming form of one experiment run: the same
// engine Run drives end to end, with ingestion, clock control, and
// observation split apart. Jobs enter through Submit / SubmitTrace, the
// simulated clock advances only through Step / StepUntil / Drain, and state
// is visible mid-run through Snapshot and the Observer hooks.
//
// A Session is not safe for concurrent use; drive it from one goroutine.
//
// Lifecycle: NewSession (validates the config, builds the cluster, and — for
// DRL configurations with a WarmupTrace — performs the Algorithm 1 offline
// phase), then any interleaving of Submit/SubmitTrace and Step/StepUntil/
// Drain, then Result for the final measurements, then Close. The batch
// helpers (Run, RunComparison, RunTradeoff) are thin wrappers over exactly
// this sequence, and replaying a trace through a Session is bitwise
// identical to Run on the same Config.
type Session struct {
	cfg   Config
	agent *global.Agent
	sm    *sim.Simulator
	cl    *cluster.Cluster
	alloc Allocator
	col   *metrics.Collector
	obs   Observer

	ctx  context.Context
	done <-chan struct{}

	// Ingestion: pending arrivals ordered by (arrival, submission order),
	// consumed through qhead so steady-state streaming reuses the backing
	// array. Exactly one pump timer is armed while arrivals are pending.
	queue     []trace.Job
	qhead     int
	pumpTimer sim.Timer
	ingested  int64

	// pool recycles completed cluster jobs (steady-state arrivals allocate
	// nothing); view is the reused allocator snapshot.
	pool []*cluster.Job
	view cluster.View

	// Allocator fast paths, classified once at construction: fastLL answers
	// least-loaded from the cluster's incremental per-shard index (no O(M)
	// snapshot scan per arrival), viewFree skips the snapshot refresh for
	// allocators that never read server state (round-robin, random). Both
	// produce bitwise-identical decisions to the snapshot path.
	fastLL   bool
	viewFree bool

	// sr drives the parallel tier (nil in the strict tier).
	sr *shardRunner

	// auto is the periodic snapshot-to-disk layer (nil unless configured
	// with WithAutoCheckpoint, leaving one never-taken nil check per epoch).
	auto *autoCheckpoint

	// tel is the live-telemetry layer (nil unless configured with
	// WithTelemetry or WithEpochTraceFile; same one-nil-check discipline).
	tel *sessionTelemetry

	// Fault layer (all nil/zero when Config.Faults is FaultNone, leaving
	// every fault branch below a never-taken nil check).
	fm    FaultModel
	rp    RetryPolicy
	retry map[int]retryInfo // job ID -> attempts + original arrival
	// Retry accounting: interrupted counts crash evictions, migrated the
	// drain-time migrations, retried the requeues, lost the drops; lostWork
	// integrates executed-then-discarded seconds. Pushed into the collector
	// at Result time.
	interrupted int64
	migrated    int64
	retried     int64
	lost        int64
	lostWork    float64

	// Failure-domain bookkeeping (nil unless the fault model declares
	// domains): domIdx maps server -> domain, domDown counts each domain's
	// down members, domainOutages counts episodes where an entire domain was
	// simultaneously down (incremented when the last member drops).
	domIdx        []int32
	domDown       []int32
	domSize       []int32
	domainOutages int64

	// err latches the first terminal error (context cancellation or guard
	// trip): all further clock advances return it and Result reports a
	// partial run instead of misleading metrics.
	err error

	finished bool
	closed   bool
}

// retryInfo tracks one in-retry job across interruptions: how often it has
// been evicted and its original declared arrival (latency keeps counting
// from the first arrival, not the requeue instant).
type retryInfo struct {
	attempts int
	orig     float64
}

// NewSession validates cfg and builds a ready-but-empty session. For DRL
// configurations with a WarmupTrace it first runs the offline phase of
// Algorithm 1 (high-epsilon rollout, autoencoder pretraining, fitted-Q
// sweeps), so construction can take meaningful time; pass a smaller (or nil)
// WarmupTrace for interactive use.
func NewSession(cfg Config, opts ...SessionOption) (*Session, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	o := sessionOptions{ctx: context.Background()}
	for _, opt := range opts {
		opt(&o)
	}

	// The RNG chain reproduces Run's historical draw order exactly:
	// agent, then warmup pass, then measured pass.
	rng := mat.NewRNG(cfg.Seed)
	var agent *global.Agent
	if cfg.Alloc == AllocDRL {
		var err error
		agent, err = global.NewAgent(cfg.Global, cfg.M, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("hierdrl: global agent: %w", err)
		}
		if cfg.WarmupTrace != nil && cfg.WarmupTrace.Len() > 0 {
			if err := warmup(cfg, agent, rng.Split()); err != nil {
				return nil, err
			}
		}
	}
	return newPass(cfg, agent, rng.Split(), cfg.CheckpointEvery, o)
}

// newPass builds the per-pass state: simulator, cluster (one power manager
// per server through the registry), allocator, and collector. Both the
// measured session and the warmup rollout are passes; the agent (if any)
// persists across them so learning accumulates.
func newPass(cfg Config, agent *global.Agent, rng *mat.RNG, checkpointEvery int, o sessionOptions) (*Session, error) {
	p := o.shards
	if p < 1 {
		p = 1
	}
	if o.etraceCap > 0 && p < 2 {
		return nil, errors.New("hierdrl: WithEpochTrace requires WithShards(p >= 2)")
	}
	lanes := make([]*sim.Simulator, p)
	for i := range lanes {
		lanes[i] = sim.New()
	}
	// The factory callback cannot return an error through cluster.New, and
	// registered factories may legitimately fail (external policies validate
	// inside their factory): capture the first failure and surface it. The
	// nil policy makes cluster.New abort on that server, so no partially
	// built cluster escapes.
	var pmErr error
	cl, err := cluster.NewSharded(cfg.Cluster, lanes, func(id int) cluster.DPMPolicy {
		pm, e := buildPowerManager(&cfg, id, rng)
		if e != nil {
			if pmErr == nil {
				pmErr = e
			}
			return nil
		}
		return pm
	})
	if pmErr != nil {
		return nil, fmt.Errorf("hierdrl: power manager: %w", pmErr)
	}
	if err != nil {
		return nil, fmt.Errorf("hierdrl: cluster: %w", err)
	}
	alloc, err := buildAllocator(&cfg, agent, rng)
	if err != nil {
		return nil, err
	}
	fm, rp, err := buildFaultLayer(&cfg)
	if err != nil {
		return nil, err
	}

	s := &Session{
		cfg:   cfg,
		agent: agent,
		sm:    lanes[0],
		cl:    cl,
		alloc: alloc,
		col:   metrics.NewCollector(cl, checkpointEvery),
		obs:   o.obs,
		ctx:   o.ctx,
	}
	if o.ctx != nil {
		s.done = o.ctx.Done()
	}
	if o.sketchOnly || o.telAddr != "" {
		// Quantile sketches feed the live endpoint's percentiles; under
		// sketch-only they also replace the per-job sample slices entirely.
		s.col.EnableSketches(telemetry.NewSketchSet(p), o.sketchOnly)
	}
	// Classify the allocator's state needs once: least-loaded runs off the
	// cluster's incremental per-shard load index (enabled here so it is
	// maintained from the first event), round-robin and random never read
	// server state, everything else gets a refreshed snapshot per arrival.
	switch alloc.(type) {
	case *policy.LeastLoaded:
		s.fastLL = true
		cl.EnableLoadIndex()
	case *policy.RoundRobin, *policy.Random:
		s.viewFree = true
		cl.SnapshotPrepare(&s.view) // M is the only field such allocators read
	}

	if fm != nil {
		s.fm, s.rp = fm, rp
		s.retry = make(map[int]retryInfo)
		// Classify the model once: its kind selects the per-server fault
		// trampoline, a Degrader supplies the fail-slow speed factor, and a
		// DomainModel's topology feeds the outage-episode counter.
		kind := fault.KindCrash
		if c, ok := fm.(fault.Classified); ok {
			kind = c.Kind()
		}
		factor := 1.0
		if d, ok := fm.(fault.Degrader); ok {
			factor = d.Factor()
		}
		cl.EnableFaults(fm.ClockFor, kind, factor)
		if dm, ok := fm.(fault.DomainModel); ok {
			s.initDomains(dm.Domains())
		}
	}
	// Fail/repair edges ride the ordinary transition stream; route it when
	// anyone listens (mode observer, or fault observers with faults on) or
	// when domain outages must be counted off the down/up edges.
	needTrans := o.obs.OnModeTransition != nil ||
		(fm != nil && (o.obs.OnServerFail != nil || o.obs.OnServerRepair != nil)) ||
		s.domIdx != nil

	s.col.OnCheckpoint = o.obs.OnCheckpoint
	if p == 1 {
		// Strict tier: synchronous callbacks on the single lane.
		if agent != nil {
			cl.OnChange = func(t sim.Time) {
				agent.ObserveCluster(t, cl.TotalPower(), cl.JobsInSystem(), cl.ReliabilityObj())
			}
		}
		cl.OnJobDone = s.jobDone
		if needTrans {
			cl.OnTransition = s.routeTransition
		}
		if fm != nil {
			cl.OnInterrupt = s.jobInterrupted
			cl.OnMigrate = s.jobMigrated
			cl.OnDegrade = s.serverDegraded
			cl.OnDrainStart = s.drainStarted
		}
	} else {
		// Parallel tier: per-shard observation logs, replayed in merged time
		// order at each epoch barrier (shard_engine.go).
		cl.SetAsync(agent != nil, needTrans)
		r := &shardRunner{s: s, p: p}
		if o.etraceCap > 0 {
			r.etrace = telemetry.NewEpochRing(o.etraceCap, p)
		}
		r.fastLL = s.fastLL
		r.needsView = !s.fastLL && !s.viewFree
		r.onDone = s.jobDone
		if needTrans {
			r.onTrans = s.routeTransition
		}
		if fm != nil {
			r.onInterrupt = s.jobInterrupted
			r.onMigrate = s.jobMigrated
			r.onDegrade = s.serverDegraded
			r.onMaint = s.drainStarted
		}
		if agent != nil {
			r.preEncode = true
			agent.PrepareGather()
			m := cluster.NewMerger(cl)
			m.OnChange = agent.ObserveCluster
			r.merger = m
		}
		s.col.CheckpointClock = func() sim.Time { return r.clock }
		// Shard 0 runs inline on the coordinator; one worker per remaining
		// shard (the barrier counts those p-1 arrivals).
		r.bar.init(p - 1)
		cl.SnapshotPrepare(&r.view)
		for i := 1; i < p; i++ {
			go r.worker(i)
		}
		s.sr = r
	}
	if o.expectJobs > 0 {
		s.Reserve(o.expectJobs)
	}
	if o.autoPath != "" {
		every := int64(o.autoEvery)
		if every < 1 {
			every = 1
		}
		s.auto = &autoCheckpoint{path: o.autoPath, every: every, keep: autoKeep}
	}
	if o.telAddr != "" || o.etracePath != "" {
		t := &sessionTelemetry{every: telemetryPublishEvery, etracePath: o.etracePath}
		if o.telAddr != "" {
			srv, serr := telemetry.NewServer(o.telAddr)
			if serr != nil {
				s.Close()
				return nil, fmt.Errorf("hierdrl: %w", serr)
			}
			t.srv = srv
		}
		s.tel = t
		if t.srv != nil {
			t.publish(s) // initial blobs: /metrics and /snapshot answer before the first epoch
		}
	}
	return s, nil
}

// jobDone is the cluster's completion callback: record metrics, notify the
// observer, recycle the job. Every branch is nil-checked so a session with
// no observer completes jobs allocation-free.
func (s *Session) jobDone(t sim.Time, j *cluster.Job) {
	s.col.JobDone(t, j)
	if s.obs.OnJobDone != nil {
		s.obs.OnJobDone(t, j)
	}
	if s.fm != nil {
		delete(s.retry, j.ID)
	}
	s.pool = append(s.pool, j)
}

// initDomains builds the server->domain tables a DomainModel needs for
// outage-episode counting. Domains are contiguous ID ranges in declared
// order (the same layout the model's per-domain clocks assume).
func (s *Session) initDomains(domains []fault.Domain) {
	s.domIdx = make([]int32, s.cl.M())
	s.domDown = make([]int32, len(domains))
	s.domSize = make([]int32, len(domains))
	id := 0
	for d, dom := range domains {
		s.domSize[d] = int32(dom.Count)
		for k := 0; k < dom.Count; k++ {
			s.domIdx[id] = int32(d)
			id++
		}
	}
}

// routeTransition fans one power-mode change out to the attached observers,
// classifying the fault edges: a transition into StateDown is a crash, one
// out of it a repair. With failure domains configured it also maintains the
// per-domain down counters — a whole-domain outage episode is counted when
// the last member drops.
func (s *Session) routeTransition(t sim.Time, server int, from, to cluster.PowerState) {
	if s.obs.OnModeTransition != nil {
		s.obs.OnModeTransition(t, server, from, to)
	}
	if to == cluster.StateDown {
		if s.domIdx != nil {
			d := s.domIdx[server]
			s.domDown[d]++
			if s.domDown[d] == s.domSize[d] {
				s.domainOutages++
			}
		}
		if s.obs.OnServerFail != nil {
			s.obs.OnServerFail(t, server)
		}
	} else if from == cluster.StateDown {
		if s.domIdx != nil {
			s.domDown[s.domIdx[server]]--
		}
		if s.obs.OnServerRepair != nil {
			s.obs.OnServerRepair(t, server)
		}
	}
}

// serverDegraded routes a fail-slow edge to the observer — invoked at the
// degrade event in the strict tier, replayed at the epoch barrier in the
// parallel tier.
func (s *Session) serverDegraded(t sim.Time, server int, factor float64) {
	if s.obs.OnServerDegrade != nil {
		s.obs.OnServerDegrade(t, server, factor)
	}
}

// drainStarted routes a maintenance-window opening to the observer.
func (s *Session) drainStarted(t sim.Time, server int) {
	if s.obs.OnDrainStart != nil {
		s.obs.OnDrainStart(t, server)
	}
}

// jobInterrupted is the cluster's crash-eviction callback — invoked during
// the crash event in the strict tier, replayed at the epoch barrier in
// merged (time, shard) order in the parallel tier. It routes the job through
// the retry policy: a requeued job re-enters the pending queue at now+delay
// under its original ID (latency keeps counting from the first declared
// arrival), a dropped job counts as lost.
func (s *Session) jobInterrupted(t sim.Time, j *cluster.Job) {
	ri, ok := s.retry[j.ID]
	if !ok {
		ri.orig = float64(j.Arrival)
	}
	ri.attempts++
	s.interrupted++
	if started, ok := j.StartedAt(); ok {
		s.lostWork += float64(t - started)
	}
	tj := Job{ID: j.ID, Arrival: float64(t), Duration: j.Duration, Req: j.Req.ToTraceReq()}
	s.pool = append(s.pool, j)
	delay, retryJob := s.rp.Retry(float64(t), tj, ri.attempts)
	if !retryJob || math.IsInf(delay, 1) || math.IsNaN(delay) {
		s.lost++
		delete(s.retry, j.ID)
		return
	}
	if delay < 0 {
		delay = 0
	}
	s.retry[j.ID] = ri
	s.retried++
	tj.Arrival = float64(t) + delay
	s.requeue(tj)
	if s.obs.OnJobRetry != nil {
		s.obs.OnJobRetry(t, j.ID, ri.attempts, delay)
	}
}

// jobMigrated is the cluster's drain-migration callback: a queued job handed
// back when its server opened a maintenance window. It shares the retry
// path's bookkeeping (attempt counting, original-arrival latency, the same
// RetryPolicy) but counts as a graceful migration, not an interruption — the
// job never started on the draining server, so no executed work is lost.
func (s *Session) jobMigrated(t sim.Time, j *cluster.Job) {
	ri, ok := s.retry[j.ID]
	if !ok {
		ri.orig = float64(j.Arrival)
	}
	ri.attempts++
	s.migrated++
	tj := Job{ID: j.ID, Arrival: float64(t), Duration: j.Duration, Req: j.Req.ToTraceReq()}
	s.pool = append(s.pool, j)
	delay, retryJob := s.rp.Retry(float64(t), tj, ri.attempts)
	if !retryJob || math.IsInf(delay, 1) || math.IsNaN(delay) {
		s.lost++
		delete(s.retry, j.ID)
		return
	}
	if delay < 0 {
		delay = 0
	}
	s.retry[j.ID] = ri
	s.retried++
	tj.Arrival = float64(t) + delay
	s.requeue(tj)
	if s.obs.OnJobRetry != nil {
		s.obs.OnJobRetry(t, j.ID, ri.attempts, delay)
	}
}

// requeue re-inserts an interrupted job behind the same (arrival, order)
// total order Submit maintains — without assigning a new ID or counting it
// as ingested again — and re-arms the strict tier's pump (a no-op in the
// parallel tier, whose epoch loop reads the queue directly).
func (s *Session) requeue(tj Job) {
	s.queue = append(s.queue, tj)
	for i := len(s.queue) - 1; i > s.qhead && s.queue[i].Arrival < s.queue[i-1].Arrival; i-- {
		s.queue[i], s.queue[i-1] = s.queue[i-1], s.queue[i]
	}
	s.arm()
}

// drained reports whether every ingested job is accounted for — completed or
// dropped — with no arrival pending. With failure clocks armed the event
// queues are never empty (every server always holds a crash or repair
// timer), so fault-aware Drain stops on this accounting condition rather
// than on queue exhaustion.
func (s *Session) drained() bool {
	return s.qhead >= len(s.queue) && s.cl.Completed()+s.lost == s.ingested
}

// fail latches the first terminal error; once set, every clock-advancing
// call returns it unchanged.
func (s *Session) fail(err error) error {
	if err != nil && s.err == nil {
		s.err = err
	}
	return err
}

// Reserve pre-sizes the ingestion queue and metric buffers for n further
// jobs, making a bounded stream allocation-free once the pools are warm.
func (s *Session) Reserve(n int) {
	s.col.Reserve(n)
	if need := len(s.queue) + n; need > cap(s.queue) {
		grown := make([]trace.Job, len(s.queue), need)
		copy(grown, s.queue)
		s.queue = grown
	}
}

// Submit ingests one job. The job's ID is assigned by the session (ingestion
// order); Arrival is an absolute simulated instant — an arrival in the past
// is dispatched immediately at the current clock (its latency still counts
// from the declared arrival). Jobs may be submitted in any order and at any
// point between clock advances.
func (s *Session) Submit(j Job) error {
	if s.closed {
		return ErrSessionClosed
	}
	j.ID = int(s.ingested)
	if err := j.Validate(); err != nil {
		return fmt.Errorf("hierdrl: submit: %w", err)
	}
	s.queue = append(s.queue, j)
	// Keep the pending region sorted by arrival, stable in submission order.
	// Streams are near-sorted in practice, so this bubble is O(1) amortized.
	for i := len(s.queue) - 1; i > s.qhead && s.queue[i].Arrival < s.queue[i-1].Arrival; i-- {
		s.queue[i], s.queue[i-1] = s.queue[i-1], s.queue[i]
	}
	s.ingested++
	s.arm()
	return nil
}

// SubmitTrace ingests every job of tr (IDs are reassigned to ingestion
// order). It is equivalent to submitting the jobs one by one, but sorts an
// out-of-order batch once instead of insertion-sorting it.
func (s *Session) SubmitTrace(tr *Trace) error {
	if s.closed {
		return ErrSessionClosed
	}
	if tr == nil || len(tr.Jobs) == 0 {
		return nil
	}
	// Validate the whole batch before mutating anything: a malformed trace
	// must leave the session untouched, not half-ingested with the pending
	// queue's ordering invariant broken and no pump armed.
	for i, tj := range tr.Jobs {
		tj.ID = int(s.ingested) + i
		if err := tj.Validate(); err != nil {
			return fmt.Errorf("hierdrl: submit: %w", err)
		}
	}
	s.Reserve(len(tr.Jobs))
	unsorted := false
	for _, tj := range tr.Jobs {
		tj.ID = int(s.ingested)
		if n := len(s.queue); n > s.qhead && tj.Arrival < s.queue[n-1].Arrival {
			unsorted = true
		}
		s.queue = append(s.queue, tj)
		s.ingested++
	}
	if unsorted {
		// Stable sort of the pending region reproduces the (arrival,
		// submission order) total order the per-job bubble maintains.
		pending := s.queue[s.qhead:]
		sort.SliceStable(pending, func(a, b int) bool {
			return pending[a].Arrival < pending[b].Arrival
		})
	}
	s.arm()
	return nil
}

// sessionPumpFire is the pump's event trampoline (package-level: no closure,
// no per-event allocation).
func sessionPumpFire(a any) { a.(*Session).pumpFire() }

// arm keeps exactly one pending-arrival timer scheduled, in the simulator's
// priority lane so a streamed arrival takes the same queue position an
// up-front-scheduled arrival historically had (arrivals win timestamp ties
// against simulation-spawned events). The parallel tier needs no pump: its
// epoch loop pulls arrivals from the queue directly.
func (s *Session) arm() {
	if s.sr != nil || s.qhead >= len(s.queue) {
		return
	}
	at := sim.Time(s.queue[s.qhead].Arrival)
	if now := s.sm.Now(); at < now {
		at = now
	}
	if s.pumpTimer.Pending() {
		if s.pumpTimer.At() <= at {
			return // already armed at or before the head arrival
		}
		s.pumpTimer.Cancel()
	}
	s.pumpTimer = s.sm.SchedulePriorityArg(at, sessionPumpFire, s)
}

// pumpFire dispatches the head arrival: renew a pooled job (or allocate the
// pool's next entry), ask the allocator for a target against a refreshed
// snapshot, submit, and re-arm for the next pending arrival.
func (s *Session) pumpFire() {
	s.pumpTimer = sim.Timer{}
	if s.fm != nil && s.cl.UnavailableServers() == s.cl.M() {
		// Every server is down or draining: park the pump at the earliest
		// instant one can change state — a repair, or a draining server
		// running dry (its power-off then schedules the real repair). The
		// triggering event sits in the same (normal) lane with an earlier
		// sequence number, so at that instant it fires before the pump does
		// and the retried dispatch sees the updated availability; each
		// re-park is therefore strictly later and the pump cannot spin.
		at := s.cl.NextAvailAt()
		if now := s.sm.Now(); at < now {
			at = now
		}
		s.pumpTimer = s.sm.ScheduleArg(at, sessionPumpFire, s)
		return
	}
	tj := s.queue[s.qhead]
	s.popHead()
	j := s.takeJob(tj)
	var target int
	switch {
	case s.fastLL:
		// Least-loaded answers from the incrementally maintained load index
		// — the same argmin, bit for bit, as the O(M) snapshot scan it
		// replaces (essential at 10k-server scale, where a per-arrival scan
		// would dominate the whole run).
		target = s.cl.LeastCommitted()
	case s.viewFree:
		// Round-robin and random read only the cluster size.
		target = s.alloc.Allocate(j, &s.view)
	default:
		target = s.alloc.Allocate(j, s.cl.SnapshotInto(&s.view))
	}
	if s.fm != nil && !s.cl.Accepting(target) {
		// Graceful degradation for state-blind allocators (round-robin,
		// random, a stale DRL pick): cyclically remap onto a server that
		// accepts work (neither down nor draining).
		target = s.cl.NextUp(target)
	}
	s.cl.Submit(j, target)
	s.arm()
}

// takeJob renews a pooled cluster job (or allocates one) for dispatch. A
// retried job's declared arrival is restored to its original instant, so its
// latency accumulates across interruptions from the first arrival.
func (s *Session) takeJob(tj Job) *cluster.Job {
	var j *cluster.Job
	if n := len(s.pool); n > 0 {
		j = s.pool[n-1]
		s.pool = s.pool[:n-1]
		j.Renew(tj)
	} else {
		j = cluster.NewJob(tj)
	}
	if s.fm != nil {
		if ri, ok := s.retry[j.ID]; ok {
			j.Arrival = sim.Time(ri.orig)
		}
	}
	return j
}

// popHead consumes the queue head, recycling the backing array when the
// queue drains and compacting when the dead prefix dominates. It mirrors
// Server.queuePop (internal/cluster) over value elements; the higher
// compaction floor reflects the larger element size and queue scale here —
// change the scheme in both places together.
func (s *Session) popHead() {
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	} else if s.qhead > 1024 && s.qhead*2 > len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
}

// ctxErr reports the session context's cancellation state without blocking.
func (s *Session) ctxErr() error {
	if s.done == nil {
		return nil
	}
	select {
	case <-s.done:
		return s.ctx.Err()
	default:
		return nil
	}
}

// guard bounds total event count relative to ingested jobs, protecting
// callers from a runaway self-rescheduling model. Every job spawns a bounded
// number of follow-up events; 64 per job is a generous ceiling. (The
// parallel tier applies the same bound summed across lanes; see
// shardRunner.guard.)
func (s *Session) guard() error {
	budget := 64*s.ingested + 1024
	if s.fm != nil {
		// Fault runs self-fund their extra events: every requeue re-dispatches
		// one job, and every crash schedules one crash + one repair event.
		budget += 64*s.retried + 16*s.cl.Failures()
	}
	if s.sm.Fired() > budget {
		return fmt.Errorf("hierdrl: event budget exceeded (%d events for %d jobs): runaway model",
			s.sm.Fired(), s.ingested)
	}
	return nil
}

// Step advances the engine by one unit of work and reports whether anything
// fired (false means the engine is idle — drained or awaiting submissions).
// In the strict tier the unit is one event; in the parallel tier it is one
// decision epoch (every lane quiesced up to the next arrival, which is then
// allocated) or, with no arrivals left, one closing phase that drains the
// lanes.
func (s *Session) Step() (bool, error) {
	if s.closed {
		return false, ErrSessionClosed
	}
	if s.err != nil {
		return false, s.err
	}
	if s.sr != nil {
		ok, err := s.sr.step()
		if err != nil {
			return ok, s.fail(err)
		}
		if ok && s.auto != nil {
			// Auto-checkpoint failures surface without latching: the run
			// itself is consistent and the next boundary retries the write.
			if aerr := s.autoTick(); aerr != nil {
				return ok, aerr
			}
		}
		if ok {
			s.telTick()
		}
		return ok, nil
	}
	if err := s.ctxErr(); err != nil {
		return false, s.fail(err)
	}
	if err := s.guard(); err != nil {
		return false, s.fail(err)
	}
	fired := s.sm.Step()
	if fired && s.auto != nil {
		if err := s.autoTick(); err != nil {
			return true, err
		}
	}
	if fired {
		s.telTick()
	}
	return fired, nil
}

// StepUntil fires every event scheduled at or before t and advances the
// clock to exactly t (it never runs past t, so a later Submit with an
// arrival after t is dispatched at its declared instant).
func (s *Session) StepUntil(t Time) error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.sr != nil {
		if err := s.fail(s.sr.stepUntil(t)); err != nil {
			return err
		}
		s.telTick()
		return s.autoTick()
	}
	for i := 0; ; i++ {
		if i&255 == 0 {
			if err := s.ctxErr(); err != nil {
				return s.fail(err)
			}
		}
		next, ok := s.sm.PeekTime()
		if !ok || next > t {
			break
		}
		if err := s.guard(); err != nil {
			return s.fail(err)
		}
		s.sm.Step()
		if s.auto != nil {
			if err := s.autoTick(); err != nil {
				return err
			}
		}
		s.telTick()
	}
	s.sm.Run(t) // queue is past t: just advances the clock to t
	return nil
}

// Drain fires events until the engine is idle: every submitted job has been
// dispatched and completed. Further jobs can still be submitted afterwards.
func (s *Session) Drain() error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.sr != nil {
		if s.auto == nil && s.tel == nil {
			return s.fail(s.sr.drainAll())
		}
		// drainAll is exactly this loop minus the snapshot/telemetry ticks;
		// the split keeps the common path's epoch loop free of the extra
		// branches.
		for {
			more, err := s.sr.step()
			if err != nil {
				return s.fail(err)
			}
			if err := s.autoTick(); err != nil {
				return err
			}
			s.telTick()
			if !more {
				return nil
			}
		}
	}
	for i := 0; ; i++ {
		if i&255 == 0 {
			if err := s.ctxErr(); err != nil {
				return s.fail(err)
			}
		}
		if err := s.guard(); err != nil {
			return s.fail(err)
		}
		if s.fm != nil && s.drained() {
			// Fault runs never run out of events (crash/repair timers are
			// perpetual): stop once the job accounting closes instead.
			return nil
		}
		if !s.sm.Step() {
			return nil
		}
		if s.auto != nil {
			if err := s.autoTick(); err != nil {
				return err
			}
		}
		s.telTick()
	}
}

// Now returns the current simulated time: the single lane's clock in the
// strict tier, the engine clock (max lane clock, updated at every barrier)
// in the parallel tier.
func (s *Session) Now() Time {
	if s.sr != nil {
		return s.sr.clock
	}
	return s.sm.Now()
}

// Pending returns the number of ingested jobs not yet dispatched.
func (s *Session) Pending() int { return len(s.queue) - s.qhead }

// Ingested returns the number of jobs accepted so far.
func (s *Session) Ingested() int64 { return s.ingested }

// Completed returns the number of jobs finished so far.
func (s *Session) Completed() int64 { return s.cl.Completed() }

// SessionSnapshot is a live mid-run view of the cluster and the accumulated
// metrics — the streaming counterpart of Result.
type SessionSnapshot struct {
	// Now is the simulated clock.
	Now Time
	// Ingested/Completed count jobs accepted and finished; PendingArrivals
	// counts ingested jobs not yet dispatched; JobsInSystem counts jobs
	// queued or running on servers.
	Ingested        int64
	Completed       int64
	PendingArrivals int
	JobsInSystem    int
	// TotalPowerW is the instantaneous cluster draw; EnergykWh the energy
	// integrated so far.
	TotalPowerW float64
	EnergykWh   float64
	// AccLatencySec/AvgLatencySec summarize completed-job latency so far.
	AccLatencySec float64
	AvgLatencySec float64
	// Robustness state (fault injection; ServersDown 0 and Availability 1 on
	// fault-free runs). Availability is 1 - downtime/(M * elapsed); Failures
	// counts crashes; JobsRetried/JobsLost count retry-policy outcomes;
	// LostWorkSec integrates executed-then-discarded work.
	ServersDown  int
	Failures     int64
	JobsRetried  int64
	JobsLost     int64
	LostWorkSec  float64
	Availability float64
	// Extended fault classes: ServersUnavailable additionally counts
	// draining servers; JobsMigrated counts drain-time migrations;
	// DomainOutages counts whole-failure-domain down episodes; DegradedSec
	// integrates fail-slow server-seconds.
	ServersUnavailable int
	JobsMigrated       int64
	DomainOutages      int64
	DegradedSec        float64
	// View is a freshly captured per-server snapshot (owned by the caller).
	View *ClusterView
}

// Snapshot captures a live view of the session into a fresh ClusterView.
// Monitoring loops that snapshot repeatedly should use SnapshotInto, which
// reuses the buffers.
func (s *Session) Snapshot() SessionSnapshot {
	var snap SessionSnapshot
	s.SnapshotInto(&snap)
	return snap
}

// SnapshotInto refreshes dst with a live view of the session, reusing
// dst.View's buffers (allocated on first use): a warm refresh performs no
// heap allocation. It is safe wherever Snapshot is — between clock advances
// and inside Observer callbacks: in the parallel tier every callback runs at
// an epoch barrier with all lanes quiescent, each shard's range of the view
// is refreshed from its own servers, and the per-shard aggregates reduce in
// fixed shard order, so a mid-run snapshot is race-free and deterministic.
func (s *Session) SnapshotInto(dst *SessionSnapshot) {
	if dst.View == nil {
		dst.View = &ClusterView{}
	}
	now := s.Now()
	if s.sr != nil {
		s.sr.snapshotRefresh(dst.View)
	} else {
		s.cl.SnapshotInto(dst.View)
	}
	dst.Now = now
	dst.Ingested = s.ingested
	dst.Completed = s.cl.Completed()
	dst.PendingArrivals = s.Pending()
	dst.JobsInSystem = s.cl.JobsInSystem()
	dst.TotalPowerW = s.cl.TotalPower()
	dst.EnergykWh = s.cl.TotalEnergyJoules(now) / JoulesPerKWh
	dst.AccLatencySec = s.col.AccLatency()
	dst.AvgLatencySec = 0
	if n := s.col.Completed(); n > 0 {
		dst.AvgLatencySec = dst.AccLatencySec / float64(n)
	}
	dst.ServersDown = s.cl.DownServers()
	dst.Failures = s.cl.Failures()
	dst.JobsRetried = s.retried
	dst.JobsLost = s.lost
	dst.LostWorkSec = s.lostWork
	dst.ServersUnavailable = s.cl.UnavailableServers()
	dst.JobsMigrated = s.migrated
	dst.DomainOutages = s.domainOutages
	dst.DegradedSec = s.cl.DegradedSeconds(now)
	dst.Availability = 1
	if now > 0 {
		dst.Availability = 1 - s.cl.DownSeconds(now)/(float64(s.cl.M())*now.Seconds())
	}
}

// Result finalizes the run and returns the measurements: the Table I summary
// at the current clock, the checkpoint series, and the transition counts.
// Call it after Drain — an incomplete run (jobs still pending or in flight)
// is an error and leaves the session resumable. The first successful call
// closes the learning episode; later calls re-summarize at the later clock.
func (s *Session) Result() (*Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.err != nil {
		return nil, fmt.Errorf("hierdrl: partial run (%d of %d jobs completed at t=%v): %w",
			s.cl.Completed(), s.ingested, s.Now(), s.err)
	}
	if got := s.cl.Completed(); got+s.lost != s.ingested {
		return nil, fmt.Errorf("hierdrl: %d of %d jobs completed", got, s.ingested)
	}
	s.finishEpisode()
	s.cl.InvariantCheck()
	if s.sr != nil && s.sr.merger != nil {
		s.sr.merger.InvariantCheck(s.cl)
	}
	s.col.SetFaultTallies(s.interrupted, s.migrated, s.retried, s.lost, s.domainOutages, s.lostWork)
	res := &Result{
		Summary:     s.col.Summarize(s.cfg.Name, s.Now()),
		Checkpoints: s.col.Checkpoints(),
	}
	for i := 0; i < s.cl.M(); i++ {
		res.TotalWakeups += s.cl.Server(i).Wakeups()
		res.TotalShutdowns += s.cl.Server(i).Shutdowns()
	}
	if s.agent != nil {
		res.AgentDiag = s.agent.String()
	}
	if s.tel != nil && s.tel.srv != nil {
		// Final publish so a scrape after completion sees the closing state.
		s.tel.publish(s)
	}
	return res, nil
}

// finishEpisode closes the DRL agent's learning episode exactly once.
func (s *Session) finishEpisode() {
	if s.finished {
		return
	}
	s.finished = true
	if s.agent != nil {
		s.agent.FinishEpisode(s.Now())
	}
}

// Close finalizes the learning episode (if Result has not already), dumps
// the epoch-trace file and shuts the telemetry endpoint down (if configured),
// stops the parallel tier's lane workers, and marks the session unusable. It
// is idempotent; the only error it can return is a failing epoch-trace dump
// (WithEpochTraceFile).
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.finishEpisode()
	if s.pumpTimer.Pending() {
		s.pumpTimer.Cancel()
	}
	err := s.telClose()
	if s.sr != nil {
		s.sr.stop()
	}
	s.closed = true
	return err
}
