package hierdrl_test

import (
	"math"
	"testing"

	"hierdrl"
)

// TestFaultObserverHammer is the chaos soak: crash/repair injection with
// every observer hook attached and a snapshot taken from inside the
// callbacks (in the sharded tier that means at the epoch barrier, while the
// worker goroutines exist), run twice per shard count under the race
// detector. The fingerprint folds in every hook firing and a mid-run
// snapshot, so it fails if fault injection perturbs determinism anywhere on
// the observation surface — not just in the final summary.
func TestFaultObserverHammer(t *testing.T) {
	cfg := faultCfg(8)
	cfg.Retry = hierdrl.RetryBackoff
	tr := hierdrl.SyntheticTraceForCluster(1500, 8, 1)

	for _, p := range []int{1, 2, 4} {
		var ref uint64
		for run := 0; run < 2; run++ {
			fp, sum, err := hammerRun(cfg, tr, p)
			if err != nil {
				t.Fatalf("P=%d run %d: %v", p, run, err)
			}
			if run == 0 {
				ref = fp
				if sum.Failures == 0 || sum.JobsRetried == 0 {
					t.Fatalf("P=%d: hammer saw no faults (failures=%d retried=%d); test is vacuous",
						p, sum.Failures, sum.JobsRetried)
				}
				continue
			}
			if fp != ref {
				t.Errorf("P=%d: observer fingerprints differ run to run: %#x vs %#x", p, ref, fp)
			}
		}
	}
}

// TestFaultMatrixObserverHammer is the fault-matrix chaos smoke: the same
// fully observed hammer as TestFaultObserverHammer, run over each of the
// three topology-aware fault classes at P = 1 and 2 under the race detector.
// Each model pins its own cross-run fingerprint (fingerprints are not
// compared across models — the classes intentionally behave differently) and
// must exercise its distinctive hooks (degrade edges, drain starts, domain
// outages) so the smoke can't pass vacuously.
func TestFaultMatrixObserverHammer(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(1500, 8, 1)
	cases := []struct {
		name string
		cfg  hierdrl.Config
		ok   func(s hierdrl.Summary) bool
	}{
		{"correlated-crash", correlatedCfg(8), func(s hierdrl.Summary) bool {
			return s.Failures > 0 && s.DomainOutages > 0
		}},
		{"degrade", degradeCfg(8), func(s hierdrl.Summary) bool {
			return s.Failures > 0 && s.DegradedSec > 0
		}},
		{"maintenance-drain", drainCfg(8), func(s hierdrl.Summary) bool {
			return s.Drains > 0
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range []int{1, 2} {
				var ref uint64
				for run := 0; run < 2; run++ {
					fp, sum, err := hammerRun(tc.cfg, tr, p)
					if err != nil {
						t.Fatalf("P=%d run %d: %v", p, run, err)
					}
					if run == 0 {
						ref = fp
						if !tc.ok(sum) {
							t.Fatalf("P=%d: hammer saw no %s activity (failures=%d drains=%d outages=%d degraded=%v); test is vacuous",
								p, tc.name, sum.Failures, sum.Drains, sum.DomainOutages, sum.DegradedSec)
						}
						continue
					}
					if fp != ref {
						t.Errorf("P=%d: observer fingerprints differ run to run: %#x vs %#x", p, ref, fp)
					}
				}
			}
		})
	}
}

// hammerRun executes one observed fault run and reduces everything the hooks
// saw — and a periodically refreshed snapshot — into one order-sensitive
// fingerprint.
func hammerRun(cfg hierdrl.Config, tr *hierdrl.Trace, p int) (uint64, hierdrl.Summary, error) {
	var (
		s    *hierdrl.Session
		snap hierdrl.SessionSnapshot
		fp   uint64
		done int
	)
	mix := func(vs ...uint64) {
		for _, v := range vs {
			fp ^= v + 0x9E3779B97F4A7C15 + fp<<6 + fp>>2
		}
	}
	obs := hierdrl.Observer{
		OnJobDone: func(at hierdrl.Time, j *hierdrl.ClusterJob) {
			mix(math.Float64bits(float64(at)), uint64(j.ID))
			done++
			if done%200 == 0 {
				// Snapshot from inside a callback: all lanes are quiescent at
				// the barrier, so this must be race-free and deterministic.
				s.SnapshotInto(&snap)
				mix(uint64(snap.Completed), uint64(snap.Failures),
					math.Float64bits(snap.EnergykWh), math.Float64bits(snap.Availability),
					math.Float64bits(snap.LostWorkSec), uint64(snap.ServersDown))
			}
		},
		OnModeTransition: func(at hierdrl.Time, server int, from, to hierdrl.PowerState) {
			mix(math.Float64bits(float64(at)), uint64(server), uint64(from)<<8|uint64(to))
		},
		OnServerFail: func(at hierdrl.Time, server int) {
			mix(math.Float64bits(float64(at)), uint64(server), 0xFA11)
		},
		OnServerRepair: func(at hierdrl.Time, server int) {
			mix(math.Float64bits(float64(at)), uint64(server), 0x4E9A)
		},
		OnJobRetry: func(at hierdrl.Time, jobID, attempt int, delaySec float64) {
			mix(math.Float64bits(float64(at)), uint64(jobID), uint64(attempt),
				math.Float64bits(delaySec))
		},
		OnServerDegrade: func(at hierdrl.Time, server int, factor float64) {
			mix(math.Float64bits(float64(at)), uint64(server), math.Float64bits(factor), 0xDE64)
		},
		OnDrainStart: func(at hierdrl.Time, server int) {
			mix(math.Float64bits(float64(at)), uint64(server), 0xD4A1)
		},
	}

	s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p), hierdrl.WithObserver(obs))
	if err != nil {
		return 0, hierdrl.Summary{}, err
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		return 0, hierdrl.Summary{}, err
	}
	if err := s.Drain(); err != nil {
		return 0, hierdrl.Summary{}, err
	}
	res, err := s.Result()
	if err != nil {
		return 0, hierdrl.Summary{}, err
	}
	bits := faultBits(res.Summary)
	mix(bits[:]...)
	return fp, res.Summary, nil
}
