package hierdrl

import (
	"bytes"
	"math"
	"testing"
)

// smallTrace returns a reduced workload that keeps integration tests fast
// while preserving the calibrated arrival/duration/demand marginals, with
// the arrival rate matched to an m-server cluster.
func smallTrace(n, m int, seed int64) *Trace { return SyntheticTraceForCluster(n, m, seed) }

func runOrFatal(t *testing.T, cfg Config, tr *Trace) *Result {
	t.Helper()
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Name, err)
	}
	return res
}

func TestRunRoundRobinCompletes(t *testing.T) {
	tr := smallTrace(800, 6, 42)
	res := runOrFatal(t, RoundRobin(6), tr)
	if res.Summary.Jobs != 800 {
		t.Fatalf("jobs %d want 800", res.Summary.Jobs)
	}
	if res.Summary.EnergykWh <= 0 || res.Summary.AvgPowerW <= 0 {
		t.Fatalf("energy/power: %+v", res.Summary)
	}
	// Round-robin keeps everything on: no transitions at all.
	if res.TotalShutdowns != 0 {
		t.Fatalf("round-robin had %d shutdowns", res.TotalShutdowns)
	}
	// With always-on DPM, servers start asleep, wake on their first job,
	// and never sleep again: at most one wakeup per server.
	if res.TotalWakeups == 0 || res.TotalWakeups > int64(6) {
		t.Fatalf("wakeups %d want in [1,6]", res.TotalWakeups)
	}
}

func TestRunChecksConfig(t *testing.T) {
	tr := smallTrace(10, 4, 1)
	cases := []Config{
		{M: 0, Alloc: AllocRoundRobin, DPM: DPMAlwaysOn},
		{M: 4, Alloc: "bogus", DPM: DPMAlwaysOn},
		{M: 4, Alloc: AllocRoundRobin, DPM: "bogus"},
		{M: 4, Alloc: AllocRoundRobin, DPM: DPMFixedTimeout, FixedTimeoutSec: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, tr); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := Run(RoundRobin(4), &Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := smallTrace(400, 4, 7)
	cfg := RoundRobin(4)
	a := runOrFatal(t, cfg, tr)
	b := runOrFatal(t, cfg, tr)
	if a.Summary.EnergykWh != b.Summary.EnergykWh ||
		a.Summary.AccLatencySec != b.Summary.AccLatencySec {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestRunCheckpoints(t *testing.T) {
	tr := smallTrace(500, 4, 3)
	cfg := RoundRobin(4)
	cfg.CheckpointEvery = 100
	res := runOrFatal(t, cfg, tr)
	if len(res.Checkpoints) != 5 {
		t.Fatalf("checkpoints %d want 5", len(res.Checkpoints))
	}
	for i := 1; i < len(res.Checkpoints); i++ {
		if res.Checkpoints[i].EnergykWh < res.Checkpoints[i-1].EnergykWh {
			t.Fatal("energy series not monotone")
		}
		if res.Checkpoints[i].AccLatencySec < res.Checkpoints[i-1].AccLatencySec {
			t.Fatal("latency series not monotone")
		}
	}
}

func TestRunFixedTimeoutSavesEnergyVsAlwaysOn(t *testing.T) {
	tr := smallTrace(600, 6, 11)
	m := 6
	alwaysOn := RoundRobin(m)
	fixed := RoundRobin(m)
	fixed.Name = "rr+timeout"
	fixed.DPM = DPMFixedTimeout
	fixed.FixedTimeoutSec = 60

	a := runOrFatal(t, alwaysOn, tr)
	b := runOrFatal(t, fixed, tr)
	if b.Summary.EnergykWh >= a.Summary.EnergykWh {
		t.Fatalf("fixed timeout did not save energy: %v vs %v kWh",
			b.Summary.EnergykWh, a.Summary.EnergykWh)
	}
	if b.TotalShutdowns == 0 {
		t.Fatal("fixed timeout never slept")
	}
}

func TestRunDRLOnlySmoke(t *testing.T) {
	tr := smallTrace(600, 6, 5)
	cfg := DRLOnly(6)
	// Shrink the networks for test speed.
	cfg.Global.AEHidden = []int{10, 5}
	cfg.Global.SubQHidden = 24
	cfg.Global.TrainEvery = 32
	cfg.WarmupTrace = smallTrace(300, 6, 6)
	res := runOrFatal(t, cfg, tr)
	if res.Summary.Jobs != 600 {
		t.Fatalf("jobs %d want 600", res.Summary.Jobs)
	}
	if res.AgentDiag == "" {
		t.Fatal("missing agent diagnostics")
	}
	// The DRL-only system must actually use sleep (ad-hoc DPM).
	if res.TotalShutdowns == 0 {
		t.Fatal("ad-hoc DPM never slept")
	}
}

func TestRunHierarchicalSmoke(t *testing.T) {
	tr := smallTrace(600, 6, 9)
	cfg := Hierarchical(6)
	cfg.Global.AEHidden = []int{10, 5}
	cfg.Global.SubQHidden = 24
	cfg.Global.TrainEvery = 32
	// EWMA predictor keeps this test fast; the LSTM path is covered by
	// TestRunHierarchicalWithLSTM below and the lstm package tests.
	cfg.Predictor = PredictorEWMA
	res := runOrFatal(t, cfg, tr)
	if res.Summary.Jobs != 600 {
		t.Fatalf("jobs %d want 600", res.Summary.Jobs)
	}
}

func TestRunHierarchicalWithLSTM(t *testing.T) {
	if testing.Short() {
		t.Skip("LSTM online training is slow; run without -short")
	}
	tr := smallTrace(500, 4, 13)
	cfg := Hierarchical(4)
	cfg.Global.AEHidden = []int{10, 5}
	cfg.Global.SubQHidden = 24
	cfg.LSTMPredictor.Lookback = 12
	cfg.LSTMPredictor.Network.Hidden = 10
	res := runOrFatal(t, cfg, tr)
	if res.Summary.Jobs != 500 {
		t.Fatalf("jobs %d want 500", res.Summary.Jobs)
	}
}

// The headline qualitative claim at reduced scale: the hierarchical system
// uses less energy than round-robin, and round-robin has the lowest latency.
func TestRunPolicyOrderingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system comparison is slow; run without -short")
	}
	m := 6
	tr := smallTrace(2500, m, 21)
	warm := smallTrace(1000, m, 22)

	rr := runOrFatal(t, RoundRobin(m), tr)

	drl := DRLOnly(m)
	drl.Global.AEHidden = []int{10, 5}
	drl.Global.SubQHidden = 32
	drl.WarmupTrace = warm
	do := runOrFatal(t, drl, tr)

	hier := Hierarchical(m)
	hier.Global.AEHidden = []int{10, 5}
	hier.Global.SubQHidden = 32
	hier.WarmupTrace = warm
	hier.Predictor = PredictorEWMA
	hi := runOrFatal(t, hier, tr)

	// Energy: both DRL systems must beat round-robin decisively.
	if do.Summary.EnergykWh >= rr.Summary.EnergykWh {
		t.Errorf("DRL-only energy %v >= round-robin %v",
			do.Summary.EnergykWh, rr.Summary.EnergykWh)
	}
	if hi.Summary.EnergykWh >= rr.Summary.EnergykWh {
		t.Errorf("hierarchical energy %v >= round-robin %v",
			hi.Summary.EnergykWh, rr.Summary.EnergykWh)
	}
	// Latency: round-robin is the floor.
	if rr.Summary.AvgLatencySec > do.Summary.AvgLatencySec ||
		rr.Summary.AvgLatencySec > hi.Summary.AvgLatencySec {
		t.Errorf("round-robin latency %v not the lowest (drl %v, hier %v)",
			rr.Summary.AvgLatencySec, do.Summary.AvgLatencySec, hi.Summary.AvgLatencySec)
	}
	t.Logf("RR:   %s", rr.Summary)
	t.Logf("DRL:  %s", do.Summary)
	t.Logf("HIER: %s", hi.Summary)
}

func TestTraceCSVRoundTripThroughPublicAPI(t *testing.T) {
	tr := smallTrace(50, 4, 2)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if back.Len() != 50 {
		t.Fatalf("round trip length %d", back.Len())
	}
}

func TestTradeoffConversion(t *testing.T) {
	res := &Result{Summary: Summary{AvgLatencySec: 10, AvgEnergyJPerJob: 20}}
	p := res.Tradeoff("x", 0.5)
	if p.Label != "x" || p.Weight != 0.5 || p.AvgLatencySec != 10 || p.AvgEnergyJPerJob != 20 {
		t.Fatalf("tradeoff point %+v", p)
	}
}

func TestSyntheticTraceStats(t *testing.T) {
	tr := SyntheticTrace(1000, 5)
	stats := TraceStatsOf(tr)
	if tr.Len() != 1000 || stats.Jobs != 1000 {
		t.Fatal("generation length mismatch")
	}
	if math.IsNaN(stats.MeanDuration) || stats.MeanDuration <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
}
