package hierdrl

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"hierdrl/internal/cluster"
	"hierdrl/internal/sim"
	"hierdrl/internal/telemetry"
)

// This file is the parallel execution tier (WithShards(P), P >= 2): the
// cluster is partitioned into P contiguous server groups, each owning its
// own event lane (timers, FCFS queues, power-mode transitions, incremental
// reliability partial sums) stepped by a dedicated worker goroutine. The
// hierarchical model makes this sound: below the global allocation tier,
// servers never interact — every event a server schedules lands on that same
// server — so between two arrival decision epochs the P lanes are fully
// independent. The global agent's decision epoch is the only synchronization
// point. Each epoch runs as one barrier-delimited phase:
//
//	release -> workers: [commit previous dispatch] + run own lane up to the
//	           epoch instant + [refresh own view range / pre-encode]
//	join    -> coordinator: replay merged observation logs (change feed for
//	           the DRL reward integral, completions for metrics + observer,
//	           transitions), then allocate the arrival against the gathered
//	           state, and pend its dispatch for the next phase.
//
// Determinism: lanes are deterministic sequential simulators, per-shard RNG
// chains are derived exactly as in the strict tier, and every merged replay
// orders records by (time, shard index) — a pure function of the simulation,
// never of goroutine scheduling. Results at a fixed P are bitwise
// reproducible run to run, and equal to the strict tier within the tolerance
// documented in DESIGN.md §12 (exactly equal whenever no two shards fire an
// observable event at the same instant, which has probability ~1 under
// continuous arrival processes).

// infTime bounds an unbounded phase; every schedulable instant is finite
// (sim.Schedule rejects NaN and nothing schedules at +Inf), so running
// "before infTime" drains a lane.
const infTime = sim.Time(math.MaxFloat64)

// runMode selects what a worker does with its lane during one phase.
type runMode uint8

const (
	// runBefore fires events strictly before cmd.until (epoch phases: the
	// dispatch at the epoch instant must precede same-instant lane events,
	// mirroring the strict tier's priority-lane arrivals).
	runBefore runMode = iota
	// runThrough fires events at or before cmd.until and advances the lane
	// clock to exactly cmd.until (StepUntil's closing phase).
	runThrough
	// runAll drains the lane (closing phases of Drain).
	runAll
)

// dispatch is one allocated arrival awaiting commitment: the target shard
// executes it at the start of the next phase, which keeps the Submit's
// cascade (queueing, wake-up, job start, DPM arrival epoch) inside the
// parallel region instead of on the coordinator's critical path.
type dispatch struct {
	job    *cluster.Job
	target int // server index
	shard  int // target's shard
	at     sim.Time
}

// phaseCmd is the coordinator-published work order of one phase. It is
// written before the barrier release and read after the workers observe it,
// so it needs no lock of its own. d carries the dispatches this phase
// commits, sorted by instant; without faults at most one is ever in flight,
// but crash requeues can schedule a new dispatch before an uncommitted one,
// so the in-flight set is a list.
type phaseCmd struct {
	mode    runMode
	until   sim.Time
	refresh bool // refresh gather-view ranges (and pre-encode for DRL)
	d       []dispatch
	stop    bool
}

// epochBarrier is the two-sided synchronization of one phase: a generation
// counter releases the workers (spin-then-park: consecutive epochs are
// microseconds apart, so a bounded spin usually wins; the condition variable
// catches idle stretches), and an arrival countdown hands completion back to
// the coordinator through a one-slot channel.
type epochBarrier struct {
	p       int // worker count (shards 1..P-1; shard 0 is the coordinator's)
	spin    int
	gen     atomic.Uint64
	arrived atomic.Int32
	done    chan struct{}
	mu      sync.Mutex
	cond    *sync.Cond
}

func (b *epochBarrier) init(p int) {
	b.p = p
	b.done = make(chan struct{}, 1)
	b.cond = sync.NewCond(&b.mu)
	// Spinning only helps when every worker (and the coordinator) can hold a
	// core; on an oversubscribed box parking immediately is faster.
	if runtime.GOMAXPROCS(0) > p {
		b.spin = 4096
	} else {
		b.spin = 64
	}
}

// release publishes the new generation and wakes parked workers. The
// arrival count is reset first — no worker from the previous phase can still
// arrive, because the coordinator joined it.
func (b *epochBarrier) release() {
	b.arrived.Store(0)
	b.mu.Lock()
	b.gen.Add(1)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// await blocks until the generation moves past gen and returns the new one.
func (b *epochBarrier) await(gen uint64) uint64 {
	for i := 0; i < b.spin; i++ {
		if g := b.gen.Load(); g != gen {
			return g
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	g := b.gen.Load()
	b.mu.Unlock()
	return g
}

// arrive signals this worker's phase completion; the last one releases the
// coordinator.
func (b *epochBarrier) arrive() {
	if b.arrived.Add(1) == int32(b.p) {
		b.done <- struct{}{}
	}
}

// join blocks the coordinator until every worker arrived.
func (b *epochBarrier) join() { <-b.done }

// shardRunner drives a sharded session: P lane workers, the epoch barrier,
// the merged-replay machinery, and the gathered allocation view.
type shardRunner struct {
	s   *Session
	p   int
	bar epochBarrier
	cmd phaseCmd

	// merger replays the merged change feed through strict-order global
	// bookkeeping for the DRL reward integral (nil without an agent).
	merger *cluster.Merger

	// view is the shared gather view: shard workers refresh disjoint server
	// ranges during refresh phases, so "merging" the per-shard view buffers
	// is free — they alias one backing array.
	view cluster.View

	// clock is the engine clock: the max lane clock, bumped at every join.
	// It never runs behind any server's energy-integration watermark, so
	// barrier-time snapshots and checkpoints integrate consistently.
	clock sim.Time

	// pends holds the allocated-but-uncommitted dispatches, sorted by
	// instant (stable on ties); each is executed by its target shard in the
	// next phase whose until covers it. Fault-free runs keep at most one
	// entry — arrival instants are monotone — but a crash requeue can put a
	// new dispatch ahead of an uncommitted one, so this is a list (a single
	// slot would drop the overtaken dispatch). commit is the reusable
	// per-phase buffer handed to the workers through phaseCmd.
	pends  []dispatch
	commit []dispatch

	// onDone/onTrans/onInterrupt/onMigrate/onDegrade/onMaint are the replay
	// callbacks, bound once — passing a method value per round would
	// allocate.
	onDone      func(sim.Time, *cluster.Job)
	onTrans     func(sim.Time, int, cluster.PowerState, cluster.PowerState)
	onInterrupt func(sim.Time, *cluster.Job)
	onMigrate   func(sim.Time, *cluster.Job)
	onDegrade   func(sim.Time, int, float64)
	onMaint     func(sim.Time, int)

	// Allocator strategy flags (classified once at construction).
	needsView bool // allocator reads server state: refresh the view each epoch
	fastLL    bool // least-loaded via the incremental per-shard LoadIndex
	preEncode bool // DRL: workers pre-encode their server ranges

	// etrace records per-phase timing spans (nil unless WithEpochTrace):
	// the coordinator opens a span before each barrier release, each worker
	// writes only its own Shards slot between release and arrive, and the
	// coordinator reads everything after join — the barrier's
	// generation/done synchronization orders the writes, so the ring needs
	// no locks (see telemetry.EpochRing).
	etrace *telemetry.EpochRing

	stopped bool
}

// runPhase executes one phase's work for shard id: commit the dispatch if it
// targets this shard, step the lane, refresh the local view range. Shard 0
// runs on the coordinator itself (saving one goroutine handoff per phase);
// shards 1..P-1 run in their workers.
func (r *shardRunner) runPhase(id int) {
	cl := r.s.cl
	lane := cl.Lane(id)
	c := &r.cmd
	var ps *telemetry.PhaseSpan
	var t0 int64
	if r.etrace != nil {
		ps = &r.etrace.Cur().Shards[id]
		t0 = r.etrace.NowNs()
		if id == 0 {
			ps.StartNs = t0 // the coordinator's inline shard never waits
		}
	}
	for i := range c.d {
		d := &c.d[i]
		if d.shard != id {
			continue
		}
		// Quiesce the lane before the dispatch instant first: an earlier
		// commit this phase may have scheduled events below d.at. Fault-free
		// runs commit one dispatch per phase with the lane already run
		// before d.at, so the extra RunBefore is a no-op there.
		lane.RunBefore(d.at)
		lane.AdvanceTo(d.at)
		cl.Submit(d.job, d.target)
	}
	if ps != nil {
		now := r.etrace.NowNs()
		ps.CommitNs = now - t0
		t0 = now
	}
	switch c.mode {
	case runBefore:
		lane.RunBefore(c.until)
	case runThrough:
		lane.Run(c.until)
	case runAll:
		lane.RunBefore(infTime)
	}
	if ps != nil {
		now := r.etrace.NowNs()
		ps.RunNs = now - t0
		t0 = now
	}
	if c.refresh {
		lo, hi := cl.ShardRange(id)
		cl.SnapshotRange(&r.view, lo, hi)
		if r.preEncode {
			r.s.agent.PreEncodeServers(&r.view, lo, hi)
		}
	}
	if ps != nil {
		ps.RefreshNs = r.etrace.NowNs() - t0
	}
}

// worker is one lane's goroutine (shards 1..P-1): wait for a phase, run it,
// arrive at the barrier.
func (r *shardRunner) worker(id int) {
	var gen uint64
	for {
		var waitStart int64
		if r.etrace != nil {
			waitStart = r.etrace.NowNs()
		}
		gen = r.bar.await(gen)
		if r.cmd.stop {
			r.bar.arrive()
			return
		}
		if r.etrace != nil {
			// The span was opened by the coordinator before the release this
			// await observed; only this worker touches its Shards slot.
			ps := &r.etrace.Cur().Shards[id]
			ps.StartNs = waitStart
			ps.WaitNs = r.etrace.NowNs() - waitStart
		}
		r.runPhase(id)
		r.bar.arrive()
	}
}

// round runs one barrier-delimited phase and replays the merged observation
// logs. Pending dispatches are attached when the phase covers their instant
// (checked explicitly so a bounded StepUntil never commits a dispatch beyond
// its horizon). The coordinator overlaps shard 0's phase work with the
// workers' before joining.
func (r *shardRunner) round(mode runMode, until sim.Time, refresh bool) {
	r.cmd = phaseCmd{mode: mode, until: until, refresh: refresh}
	if n := r.coveredPends(until); n > 0 {
		r.commit = append(r.commit[:0], r.pends[:n]...)
		r.pends = r.pends[:copy(r.pends, r.pends[n:])]
		r.cmd.d = r.commit
	}
	if r.etrace != nil {
		// Open the span before the release so workers can stamp their slots
		// (runMode and the trace's mode constants coincide by construction).
		r.etrace.Begin(float64(until), uint8(mode))
	}
	r.bar.release()
	r.runPhase(0)
	r.bar.join()
	if c := r.s.cl.Clock(); c > r.clock {
		r.clock = c
	}
	var sp *telemetry.EpochSpan
	if r.etrace != nil {
		sp = r.etrace.Cur()
		sp.ReplayStartNs = r.etrace.NowNs()
	}
	r.replay()
	if sp != nil {
		sp.ReplayNs = r.etrace.NowNs() - sp.ReplayStartNs
	}
}

// replay drains the merged observation streams on the coordinator: the
// change feed into the DRL reward integral, completions into the collector,
// the observer hooks, and the job pool, transitions into the observer. All
// shards are quiescent here, so user callbacks may take a Session snapshot.
func (r *shardRunner) replay() {
	s := r.s
	if r.merger != nil {
		s.cl.DrainChanges(r.merger)
	}
	s.cl.DrainDones(r.onDone)
	if r.onTrans != nil {
		s.cl.DrainTrans(r.onTrans)
	}
	if r.onMaint != nil {
		// Maintenance openings replay before the migration stream so an
		// observer hears OnDrainStart before the window's migrated jobs.
		s.cl.DrainMaints(r.onMaint)
	}
	if r.onDegrade != nil {
		s.cl.DrainDegrades(r.onDegrade)
	}
	if r.onInterrupt != nil {
		// Crash evictions replay last: a job completed at the same instant its
		// server died was already running, so its completion wins the tie and
		// the eviction stream only carries genuinely interrupted work.
		s.cl.DrainInterrupts(r.onInterrupt)
	}
	if r.onMigrate != nil {
		s.cl.DrainMigrates(r.onMigrate)
	}
}

// guard bounds total event count relative to ingested jobs across all lanes
// (the sharded form of Session.guard).
func (r *shardRunner) guard() error {
	var fired int64
	for i := 0; i < r.p; i++ {
		fired += r.s.cl.Lane(i).Fired()
	}
	budget := 64*r.s.ingested + 1024
	if r.s.fm != nil {
		// Fault chains fund their own events: crashes and repairs each fire a
		// timer, and every requeue replays a dispatch cascade.
		budget += 64*r.s.retried + 16*r.s.cl.Failures()
	}
	if fired > budget {
		return fmt.Errorf("hierdrl: event budget exceeded (%d events for %d jobs): runaway model",
			fired, r.s.ingested)
	}
	return nil
}

// anyEvents reports whether any lane still has pending events.
func (r *shardRunner) anyEvents() bool {
	for i := 0; i < r.p; i++ {
		if r.s.cl.Lane(i).Pending() > 0 {
			return true
		}
	}
	return false
}

// coveredPends returns how many leading entries of the sorted in-flight
// dispatch list fall at or before until (eligible to commit this phase).
func (r *shardRunner) coveredPends(until sim.Time) int {
	n := 0
	for n < len(r.pends) && r.pends[n].at <= until {
		n++
	}
	return n
}

// nextEventTime returns the earliest pending instant across all lanes
// (infTime when every lane is idle).
func (r *shardRunner) nextEventTime() sim.Time {
	h := infTime
	for i := 0; i < r.p; i++ {
		if at, ok := r.s.cl.Lane(i).PeekTime(); ok && at < h {
			h = at
		}
	}
	return h
}

// step advances the engine by one decision epoch: quiesce every lane up to
// the next arrival's instant, allocate it against the gathered state, and
// pend its dispatch. With no arrivals left it runs one closing phase that
// commits the last dispatch and drains the lanes. It reports whether the
// engine did (or still has) work.
func (r *shardRunner) step() (bool, error) {
	s := r.s
	if err := s.ctxErr(); err != nil {
		return false, err
	}
	if err := r.guard(); err != nil {
		return false, err
	}
	if s.qhead < len(s.queue) {
		at := sim.Time(s.queue[s.qhead].Arrival)
		if r.clock > at {
			// A late submission: like the strict pump, dispatch at the
			// current clock (latency still counts from the declared arrival).
			at = r.clock
		}
		if n := len(r.pends); n > 0 && r.pends[n-1].at > at {
			// Decision instants must never run backwards (the DRL reward
			// integrator advances to each one). A fault requeue can put a
			// re-arrival at the head that precedes an uncommitted dispatch's
			// instant — committed ones are already covered by r.clock — so
			// clamp to the newest pended instant. Fault-free runs never
			// requeue and this is a no-op.
			at = r.pends[n-1].at
		}
		r.round(runBefore, at, r.needsView)
		if s.fm != nil && s.cl.UnavailableServers() == s.cl.M() {
			// Every server is down or draining at the dispatch instant: run
			// the lanes through the earliest availability change (a repair,
			// or a draining server running dry) instead of allocating into a
			// dead cluster. The arrival re-dispatches on the next step
			// against the updated state (the sharded analogue of the strict
			// pump parking at NextAvailAt).
			r.round(runThrough, s.cl.NextAvailAt(), false)
			return true, nil
		}
		r.dispatchNext(at)
		return true, nil
	}
	if s.fm != nil {
		// With failure clocks armed the lanes never drain — every server
		// always holds a crash or repair timer — so runAll would spin
		// forever. Closing phases instead advance event by event until the
		// accounting condition holds: every ingested job completed or lost.
		if len(r.pends) == 0 && s.drained() {
			return false, nil
		}
		h := r.nextEventTime()
		if len(r.pends) > 0 && r.pends[0].at < h {
			h = r.pends[0].at
		}
		if h == infTime {
			return false, nil
		}
		r.round(runThrough, h, false)
		return true, nil
	}
	if len(r.pends) > 0 || r.anyEvents() {
		r.round(runAll, infTime, false)
		return true, nil
	}
	return false, nil
}

// dispatchNext pops the head arrival, allocates it at instant at, and pends
// the dispatch for the next phase.
func (r *shardRunner) dispatchNext(at sim.Time) {
	s := r.s
	var sp *telemetry.EpochSpan
	if r.etrace != nil {
		sp = r.etrace.Cur()
		sp.AllocStartNs = r.etrace.NowNs()
	}
	tj := s.queue[s.qhead]
	s.popHead()
	j := s.takeJob(tj)
	r.view.Now = at
	var target int
	switch {
	case r.fastLL:
		// The per-shard tournament trees were maintained inside the lane
		// workers; the decision collapses to a P-way reduce over shard
		// minima — bitwise the same argmin as the O(M) snapshot scan.
		target = s.cl.LeastCommitted()
	case r.preEncode:
		// Group features were gathered by the shard workers in parallel;
		// the epoch evaluates all K Sub-Q heads over them as one batched
		// GEMM (QNetwork.QValuesInto) exactly as the strict tier does.
		target = s.agent.AllocatePreEncoded(j, &r.view)
	default:
		target = s.alloc.Allocate(j, &r.view)
	}
	if s.fm != nil && !s.cl.Accepting(target) {
		// State-blind allocators (round-robin, random, a stale DRL head) may
		// still pick a dead or draining server; remap to the next accepting
		// one. The all-unavailable case was stalled out before dispatch, so
		// NextUp always finds one.
		target = s.cl.NextUp(target)
	}
	r.pends = append(r.pends, dispatch{job: j, target: target, shard: s.cl.ShardOf(target), at: at})
	// Keep the in-flight list sorted by instant, stable on ties. A crash
	// requeue can dispatch before an uncommitted earlier allocation (its
	// re-arrival may precede the pending dispatch's instant), so the new
	// entry is not always the maximum.
	for i := len(r.pends) - 1; i > 0 && r.pends[i].at < r.pends[i-1].at; i-- {
		r.pends[i], r.pends[i-1] = r.pends[i-1], r.pends[i]
	}
	if sp != nil {
		sp.AllocNs = r.etrace.NowNs() - sp.AllocStartNs
	}
}

// drainAll runs decision epochs until every submitted job has completed and
// every lane is idle.
func (r *shardRunner) drainAll() error {
	for {
		more, err := r.step()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// stepUntil dispatches every arrival reachable at or before t and then runs
// every lane through t, leaving the engine clock at exactly t. Arrivals
// whose dispatch instant falls beyond t (late submissions against an already
// advanced clock) stay pending, exactly like the strict pump timer they
// replace.
func (r *shardRunner) stepUntil(t sim.Time) error {
	s := r.s
	for s.qhead < len(s.queue) && sim.Time(s.queue[s.qhead].Arrival) <= t && r.clock <= t {
		if err := s.ctxErr(); err != nil {
			return err
		}
		if err := r.guard(); err != nil {
			return err
		}
		at := sim.Time(s.queue[s.qhead].Arrival)
		if r.clock > at {
			at = r.clock
		}
		if n := len(r.pends); n > 0 && r.pends[n-1].at > at {
			// Same monotone-decision clamp as step(): a fault requeue at the
			// head must not dispatch before an uncommitted earlier decision.
			at = r.pends[n-1].at
		}
		if at > t {
			// The clamped instant fell beyond the horizon; the arrival stays
			// pending for a later call, like a late submission.
			break
		}
		r.round(runBefore, at, r.needsView)
		if s.fm != nil && s.cl.UnavailableServers() == s.cl.M() {
			// All servers unavailable at the dispatch instant: advance to the
			// earliest availability change if it lies within the horizon, else
			// leave the arrival pending for a later call (like a late
			// submission).
			ra := s.cl.NextAvailAt()
			if ra > t {
				break
			}
			r.round(runThrough, ra, false)
			continue
		}
		r.dispatchNext(at)
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	if r.clock <= t {
		r.round(runThrough, t, false)
		if t > r.clock {
			r.clock = t
		}
	}
	return nil
}

// snapshotRefresh refreshes the [lo, hi) ranges of a monitoring view on the
// coordinator. All lanes are quiescent between phases, so the serial walk is
// race-free (this is a monitoring surface, not the per-epoch gather path).
func (r *shardRunner) snapshotRefresh(v *cluster.View) {
	s := r.s
	s.cl.SnapshotPrepare(v)
	v.Now = r.clock
	s.cl.SnapshotRange(v, 0, s.cl.M())
}

// stop terminates the lane workers. Idempotent.
func (r *shardRunner) stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.cmd = phaseCmd{stop: true}
	r.bar.release()
	r.bar.join()
}
