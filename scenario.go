package hierdrl

import (
	"fmt"
	"sort"
	"sync"

	"hierdrl/internal/cluster"
	"hierdrl/internal/fault"
	"hierdrl/internal/trace"
	"hierdrl/internal/workload"
)

// Re-exported workload-composition types, so scenarios are declared against
// the public API without importing internal packages. See internal/workload
// for the composition model and the determinism contract.
type (
	// WorkloadConfig is a declarative workload: a base arrival-rate layer,
	// multiplicative modulators, and a job-class mix.
	WorkloadConfig = workload.Config
	// WorkloadBase is the base arrival-rate layer (constant/diurnal/ramp).
	WorkloadBase = workload.Base
	// WorkloadModulator is one multiplicative rate layer (MMPP burst or
	// flash-crowd spike).
	WorkloadModulator = workload.Modulator
	// WorkloadClass is one job class: a mix weight plus duration and demand
	// distributions.
	WorkloadClass = workload.Class
	// WorkloadDist is a scalar distribution (fixed/exponential/Pareto/
	// lognormal).
	WorkloadDist = workload.Dist
	// WorkloadSource generates a WorkloadConfig's jobs one at a time; it
	// implements JobSource.
	WorkloadSource = workload.Source
	// JobSource is the pull-based job producer the streaming runners accept
	// (RunSource): Next returns jobs in arrival order until ok is false.
	JobSource = trace.Source
	// ServerClass declares one heterogeneous slice of the cluster: Count
	// machines sharing a speed factor and power curve (Config.Cluster.Classes).
	ServerClass = cluster.ServerClass
	// PowerModel maps server activity to watts (per-class power curves).
	PowerModel = cluster.PowerModel
)

// Re-exported workload composition kinds.
const (
	BaseConstant = workload.BaseConstant
	BaseDiurnal  = workload.BaseDiurnal
	BaseRamp     = workload.BaseRamp

	ModMMPP  = workload.ModMMPP
	ModFlash = workload.ModFlash

	DistFixed       = workload.DistFixed
	DistExponential = workload.DistExponential
	DistPareto      = workload.DistPareto
	DistLogNormal   = workload.DistLogNormal
)

// Scenario is a named, self-contained evaluation setting: a cluster size
// (optionally heterogeneous) plus a declarative workload. A scenario's job
// sequence is a pure function of (seed, Scenario) — bitwise reproducible run
// to run and identical at every shard count.
type Scenario struct {
	// Name resolves the scenario in the registry (hiersim -scenario).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// M is the cluster size the workload is calibrated for.
	M int
	// Workload declares the job generator.
	Workload WorkloadConfig
	// Classes optionally declares heterogeneous server classes (counts must
	// sum to M); empty means the homogeneous default cluster.
	Classes []ServerClass
	// Faults optionally enables a registered fault model for the scenario
	// (empty = fault-free). A fault-enabled scenario replaces the run
	// config's fault family wholesale in ApplyTo, so the scenario stays a
	// self-contained, reproducible evaluation setting.
	Faults FaultKind
	// MTTFSec/MTTRSec parameterize the crash and degrade fault clocks.
	MTTFSec float64
	MTTRSec float64
	// Domains partitions the cluster into failure domains for
	// correlated-crash (empty = derived from Classes, else one domain).
	Domains []FailureDomain
	// DegradeFactor is the fail-slow speed multiplier (0 = default 0.25).
	DegradeFactor float64
	// DrainEverySec/DrainWindowSec parameterize maintenance-drain windows
	// (0 = defaults 14400 s / 600 s).
	DrainEverySec  float64
	DrainWindowSec float64
	// Retry picks the requeue policy for evicted/migrated jobs (empty keeps
	// the run config's policy).
	Retry RetryKind
}

// Validate checks the scenario's workload and cluster declaration.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hierdrl: scenario with empty name")
	}
	if s.M <= 0 {
		return fmt.Errorf("hierdrl: scenario %q: M must be positive, got %d", s.Name, s.M)
	}
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("hierdrl: scenario %q: %w", s.Name, err)
	}
	cc := cluster.DefaultConfig(s.M)
	cc.Classes = s.Classes
	if err := cc.Validate(); err != nil {
		return fmt.Errorf("hierdrl: scenario %q: %w", s.Name, err)
	}
	if s.Faults != "" && s.Faults != FaultNone {
		if _, ok := lookupFaultModel(s.Faults); !ok {
			return fmt.Errorf("hierdrl: scenario %q: unknown fault model %q", s.Name, s.Faults)
		}
		if len(s.Domains) > 0 {
			if err := fault.ValidateDomains(s.Domains, s.M); err != nil {
				return fmt.Errorf("hierdrl: scenario %q: %w", s.Name, err)
			}
		}
	}
	if s.Retry != "" {
		if _, ok := lookupRetryPolicy(s.Retry); !ok {
			return fmt.Errorf("hierdrl: scenario %q: unknown retry policy %q", s.Name, s.Retry)
		}
	}
	return nil
}

// Source compiles the scenario's workload into a streaming job generator.
func (s Scenario) Source(seed int64) (*WorkloadSource, error) {
	src, err := workload.NewSource(s.Workload, seed)
	if err != nil {
		return nil, fmt.Errorf("hierdrl: scenario %q: %w", s.Name, err)
	}
	return src, nil
}

// Scaled returns the scenario resized to m servers and jobs jobs (either
// argument <= 0 keeps the original). Arrival rates scale by m/M so the
// relative offered load is preserved, and heterogeneous class counts are
// redistributed proportionally (largest-remainder rounding, every class
// keeping at least one machine when m allows).
func (s Scenario) Scaled(m, jobs int) Scenario {
	if jobs > 0 {
		s.Workload.NumJobs = jobs
	}
	if m <= 0 || m == s.M {
		return s
	}
	f := float64(m) / float64(s.M)
	s.Workload.Base.Rate *= f
	s.Workload.Base.EndRate *= f
	if len(s.Classes) > 0 {
		s.Classes = scaleServerClasses(s.Classes, m)
	}
	if len(s.Domains) > 0 {
		s.Domains = scaleFailureDomains(s.Domains, m)
	}
	s.M = m
	return s
}

// ApplyTo configures cfg to run this scenario: the cluster size, for
// heterogeneous scenarios the server-class layout, and for fault-enabled
// scenarios the whole fault family (model, clocks, domains, drain/degrade
// parameters, and — when declared — the retry policy). Any prior Cluster
// override is replaced; fault flags are replaced only when the scenario
// declares a fault model, so fault-free scenarios still compose with
// externally configured fault injection.
func (s Scenario) ApplyTo(cfg *Config) {
	cfg.M = s.M
	if len(s.Classes) > 0 {
		cc := cluster.DefaultConfig(s.M)
		cc.Classes = s.Classes
		cfg.Cluster = cc
	} else {
		cfg.Cluster = cluster.Config{}
	}
	if s.Faults != "" {
		cfg.Faults = s.Faults
		cfg.MTTFSec = s.MTTFSec
		cfg.MTTRSec = s.MTTRSec
		cfg.Domains = s.Domains
		cfg.DegradeFactor = s.DegradeFactor
		cfg.DrainEverySec = s.DrainEverySec
		cfg.DrainWindowSec = s.DrainWindowSec
	}
	if s.Retry != "" {
		cfg.Retry = s.Retry
	}
}

// scaleCounts redistributes counts proportionally onto a total of m with
// largest-remainder rounding, keeping every entry at least 1 when m allows.
func scaleCounts(counts []int, m int) []int {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]int, len(counts))
	rem := make([]float64, len(counts))
	sum := 0
	for i, c := range counts {
		ideal := float64(c) * float64(m) / float64(total)
		out[i] = int(ideal)
		rem[i] = ideal - float64(out[i])
		sum += out[i]
	}
	for ; sum < m; sum++ {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		out[best]++
		rem[best] = -1
	}
	for i := range out {
		if out[i] == 0 && m >= len(out) {
			big := 0
			for j := range out {
				if out[j] > out[big] {
					big = j
				}
			}
			out[big]--
			out[i]++
		}
	}
	return out
}

// scaleServerClasses redistributes class counts proportionally onto m
// servers with largest-remainder rounding.
func scaleServerClasses(classes []ServerClass, m int) []ServerClass {
	counts := make([]int, len(classes))
	for i, c := range classes {
		counts[i] = c.Count
	}
	counts = scaleCounts(counts, m)
	out := make([]ServerClass, len(classes))
	for i, c := range classes {
		out[i] = c
		out[i].Count = counts[i]
	}
	return out
}

// scaleFailureDomains redistributes failure-domain counts proportionally
// onto m servers, the same way server classes rescale, so a fault-enabled
// scenario keeps its rack topology shape at any cluster size. When m is
// smaller than the number of domains the partition collapses to equal
// domains over min(len, m) racks (every domain must keep >= 1 server).
func scaleFailureDomains(domains []FailureDomain, m int) []FailureDomain {
	if m < len(domains) {
		return EqualDomains(m, m)
	}
	counts := make([]int, len(domains))
	for i, d := range domains {
		counts[i] = d.Count
	}
	counts = scaleCounts(counts, m)
	out := make([]FailureDomain, len(domains))
	for i, d := range domains {
		out[i] = d
		out[i].Count = counts[i]
	}
	return out
}

var (
	scenarioMu  sync.RWMutex
	scenarioMap = map[string]Scenario{}
)

// RegisterScenario adds a named scenario to the registry (the same pattern
// as RegisterAllocator). It panics on an invalid scenario or a name already
// registered, including the built-ins.
func RegisterScenario(s Scenario) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioMap[s.Name]; dup {
		panic(fmt.Sprintf("hierdrl: scenario %q already registered", s.Name))
	}
	scenarioMap[s.Name] = s
}

// Scenarios returns every registered scenario name in sorted order.
func Scenarios() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioMap))
	for name := range scenarioMap {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupScenario resolves a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarioMap[name]
	return s, ok
}

// refRate is the paper's calibrated 30-server arrival rate: ~95,000 jobs
// over one simulated week (see trace.DefaultGeneratorConfig).
const refRate = 95000.0 / (7 * 86400)

// googleClass returns the classic Google-style job class (the marginals of
// trace.DefaultGeneratorConfig) with the given mix weight.
func googleClass(weight float64) WorkloadClass {
	return WorkloadClass{
		Name:           "google",
		Weight:         weight,
		Duration:       WorkloadDist{Kind: DistLogNormal, Median: 650, Sigma: 0.9},
		CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.035, Sigma: 0.8},
		MemCorrelation: 0.7,
		Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.010, Sigma: 0.7},
	}
}

// Built-in scenarios. Rates are calibrated at M=30 so the offered CPU load
// stays near the paper's ~20% operating point (the scale-10k scenario scales
// the same calibration to 10,000 servers); EXPERIMENTS.md tabulates the
// measured sweep. Like the policy registries, built-ins register through the
// same machinery external scenarios use.
func init() {
	RegisterScenario(Scenario{
		Name:        "steady",
		Description: "homogeneous Poisson arrivals at the paper's mean rate, Google-style jobs",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseConstant, Rate: refRate},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
	RegisterScenario(Scenario{
		Name:        "diurnal",
		Description: "sinusoidal day/night arrival swing (amplitude 0.35) over Google-style jobs",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseDiurnal, Rate: refRate, Amplitude: 0.35},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
	RegisterScenario(Scenario{
		Name:        "flashcrowd",
		Description: "diurnal base with a daily 6x flash-crowd spike (5 min ramp, 15 min hold, 30 min decay)",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseDiurnal, Rate: 0.9 * refRate, Amplitude: 0.25},
			Mods: []WorkloadModulator{{
				Kind: ModFlash, AtSec: 6 * 3600, Peak: 6,
				RampUpSec: 300, HoldSec: 900, DecaySec: 1800, RepeatEverySec: 86400,
			}},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
	RegisterScenario(Scenario{
		Name:        "heavytail",
		Description: "mice/elephants mix: 95% short exponential jobs, 5% Pareto(1.3) heavy-tail elephants",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseConstant, Rate: 0.54},
			Classes: []WorkloadClass{
				{
					Name:           "mice",
					Weight:         0.95,
					Duration:       WorkloadDist{Kind: DistExponential, Mean: 180},
					CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.02, Sigma: 0.5},
					MemCorrelation: 0.7,
					Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.008, Sigma: 0.5},
				},
				{
					Name:           "elephants",
					Weight:         0.05,
					Duration:       WorkloadDist{Kind: DistPareto, Alpha: 1.3, Xm: 600},
					CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.08, Sigma: 0.6},
					MemCorrelation: 0.8,
					Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.02, Sigma: 0.6},
				},
			},
		},
	})
	RegisterScenario(Scenario{
		Name:        "burst-mmpp",
		Description: "two stacked MMPP burst layers (2.5x sharp bursts + 1.5x rolling surges) over a constant base",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseConstant, Rate: 0.87 * refRate},
			Mods: []WorkloadModulator{
				{Kind: ModMMPP, Factor: 2.5, MeanEverySec: 2 * 3600, MeanLenSec: 240},
				{Kind: ModMMPP, Factor: 1.5, MeanEverySec: 2700, MeanLenSec: 600},
			},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
	RegisterScenario(Scenario{
		Name:        "ramp",
		Description: "linear load growth from 0.3x to 1.5x the mean rate over three days, then sustained",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base: WorkloadBase{
				Kind: BaseRamp, Rate: 0.3 * refRate,
				EndRate: 1.5 * refRate, RampSec: 3 * 86400,
			},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
	RegisterScenario(Scenario{
		Name:        "mixed-het",
		Description: "interactive/batch/analytics mix on a heterogeneous eco/std/turbo cluster",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseDiurnal, Rate: 0.115, Amplitude: 0.3},
			Classes: []WorkloadClass{
				{
					Name:           "interactive",
					Weight:         0.6,
					Duration:       WorkloadDist{Kind: DistExponential, Mean: 120},
					CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.015, Sigma: 0.5},
					MemCorrelation: 0.6,
					Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.005, Sigma: 0.5},
				},
				{
					Name:           "batch",
					Weight:         0.3,
					Duration:       WorkloadDist{Kind: DistLogNormal, Median: 1200, Sigma: 0.6},
					CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.05, Sigma: 0.6},
					MemCorrelation: 0.8,
					Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.02, Sigma: 0.6},
				},
				{
					Name:           "analytics",
					Weight:         0.1,
					Duration:       WorkloadDist{Kind: DistPareto, Alpha: 1.5, Xm: 900},
					CPU:            WorkloadDist{Kind: DistLogNormal, Median: 0.12, Sigma: 0.5},
					MemCorrelation: 0.9,
					Disk:           WorkloadDist{Kind: DistLogNormal, Median: 0.05, Sigma: 0.6},
				},
			},
		},
		Classes: []ServerClass{
			{Name: "eco", Count: 10, Speed: 0.7, Power: PowerModel{IdleW: 60, PeakW: 100, TransitionW: 100}},
			{Name: "std", Count: 12, Speed: 1.0, Power: PowerModel{IdleW: 87, PeakW: 145, TransitionW: 145}},
			{Name: "turbo", Count: 8, Speed: 1.5, Power: PowerModel{IdleW: 110, PeakW: 220, TransitionW: 220}},
		},
	})
	RegisterScenario(Scenario{
		Name:        "rack-outage",
		Description: "steady load with correlated rack failures: 5 racks of 6, whole racks crash together",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseConstant, Rate: refRate},
			Classes: []WorkloadClass{googleClass(1)},
		},
		Faults:  FaultCorrelatedCrash,
		MTTFSec: 40000,
		MTTRSec: 900,
		Domains: []FailureDomain{
			{Name: "rack0", Count: 6}, {Name: "rack1", Count: 6}, {Name: "rack2", Count: 6},
			{Name: "rack3", Count: 6}, {Name: "rack4", Count: 6},
		},
		Retry: RetryBackoff,
	})
	RegisterScenario(Scenario{
		Name:        "fail-slow",
		Description: "diurnal load with fail-slow stragglers: servers degrade to 35% speed, repair restores",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseDiurnal, Rate: refRate, Amplitude: 0.35},
			Classes: []WorkloadClass{googleClass(1)},
		},
		Faults:        FaultDegrade,
		MTTFSec:       20000,
		MTTRSec:       1800,
		DegradeFactor: 0.35,
	})
	RegisterScenario(Scenario{
		Name:        "patch-window",
		Description: "steady load under rolling maintenance: each server drains for 10 min every 6 h",
		M:           30,
		Workload: WorkloadConfig{
			NumJobs: 20000,
			Base:    WorkloadBase{Kind: BaseConstant, Rate: refRate},
			Classes: []WorkloadClass{googleClass(1)},
		},
		Faults:         FaultDrain,
		DrainEverySec:  21600,
		DrainWindowSec: 600,
		Retry:          RetryImmediate,
	})
	RegisterScenario(Scenario{
		Name:        "scale-10k-diurnal",
		Description: "the scale-10k operating point under a diurnal swing: 10,000 servers, 2M streamed jobs",
		M:           10000,
		Workload: WorkloadConfig{
			NumJobs: 2_000_000,
			Base:    WorkloadBase{Kind: BaseDiurnal, Rate: refRate * 10000 / 30, Amplitude: 0.35},
			Classes: []WorkloadClass{googleClass(1)},
		},
	})
}
