//go:build !race

package hierdrl_test

import (
	"testing"

	"hierdrl"
)

// TestSessionSteadyStepZeroAlloc pins the api_redesign acceptance criterion:
// with no observers attached, a steady-state Session step performs zero
// allocations. The workload is pre-ingested (WithExpectedJobs reserves the
// metric buffers), the first three quarters of the run warm every pool —
// event slots, the job pool, server queues, the reused snapshot — and the
// measured window then steps through live arrival/completion traffic.
//
// The build tag mirrors the other alloc-pinned suites: the race detector's
// instrumentation allocates, so exact counts only hold without -race.
func TestSessionSteadyStepZeroAlloc(t *testing.T) {
	const jobs = 6000
	tr := hierdrl.SyntheticTraceForCluster(jobs, 4, 1)
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(4), hierdrl.WithExpectedJobs(jobs))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("SubmitTrace: %v", err)
	}

	// Warm phase: run three quarters of the workload.
	warmUntil := hierdrl.Time(tr.Jobs[3*jobs/4].Arrival)
	if err := s.StepUntil(warmUntil); err != nil {
		t.Fatalf("StepUntil: %v", err)
	}

	avg := testing.AllocsPerRun(2000, func() {
		if _, err := s.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Session step allocates %v allocs/op, want 0", avg)
	}

	// The measured session still finishes correctly.
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Summary.Jobs != jobs {
		t.Fatalf("jobs %d want %d", res.Summary.Jobs, jobs)
	}
}
