package hierdrl_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"hierdrl"
	"hierdrl/internal/cluster"
)

// sessionScale mirrors the golden fingerprint's reduced operating point.
const (
	sessM       = 6
	sessJobs    = 500
	sessWarmups = 200
)

// sessionPresets builds the three evaluation systems exactly as
// RunComparison does, sharing one workload and one warmup trace.
func sessionPresets(t *testing.T) (tr, warm *hierdrl.Trace, cfgs []hierdrl.Config) {
	t.Helper()
	sc := hierdrl.Scale{Jobs: sessJobs, WarmupJobs: sessWarmups, Seed: 1, ClusterM: sessM}
	tr = hierdrl.SyntheticTraceForCluster(sc.Jobs, sc.ClusterM, sc.Seed)
	warm = hierdrl.SyntheticTraceForCluster(sc.WarmupJobs, sc.ClusterM, sc.Seed+1000)

	rr := hierdrl.RoundRobin(sessM)
	drl := hierdrl.DRLOnly(sessM)
	drl.WarmupTrace = warm
	hier := hierdrl.Hierarchical(sessM)
	hier.WarmupTrace = warm
	cfgs = []hierdrl.Config{rr, drl, hier}
	for i := range cfgs {
		cfgs[i].CheckpointEvery = 100
	}
	return tr, warm, cfgs
}

func summaryBits(s hierdrl.Summary) [8]uint64 {
	return [8]uint64{
		math.Float64bits(s.EnergykWh),
		math.Float64bits(s.AccLatencySec),
		math.Float64bits(s.AvgPowerW),
		math.Float64bits(s.AvgLatencySec),
		math.Float64bits(s.AvgEnergyJPerJob),
		math.Float64bits(s.P95LatencySec),
		math.Float64bits(s.MeanWaitSec),
		math.Float64bits(s.DurationSec),
	}
}

// TestSessionMatchesRunBitwise is the api_redesign acceptance test: driving
// a Session by hand — per-job Submit with interleaved StepUntil clock
// advances — reproduces Run's measurements bit for bit on all three presets.
func TestSessionMatchesRunBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("three-system comparison is slow; run without -short")
	}
	tr, _, cfgs := sessionPresets(t)
	for _, cfg := range cfgs {
		batch, err := hierdrl.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: Run: %v", cfg.Name, err)
		}

		s, err := hierdrl.NewSession(cfg)
		if err != nil {
			t.Fatalf("%s: NewSession: %v", cfg.Name, err)
		}
		for i, j := range tr.Jobs {
			if err := s.Submit(j); err != nil {
				t.Fatalf("%s: Submit %d: %v", cfg.Name, i, err)
			}
			// Interleave clock advances with ingestion: true streaming, not
			// a submit-everything-then-run replay.
			if i%64 == 63 {
				if err := s.StepUntil(hierdrl.Time(j.Arrival)); err != nil {
					t.Fatalf("%s: StepUntil: %v", cfg.Name, err)
				}
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("%s: Drain: %v", cfg.Name, err)
		}
		stream, err := s.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", cfg.Name, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: Close: %v", cfg.Name, err)
		}

		if got, want := summaryBits(stream.Summary), summaryBits(batch.Summary); got != want {
			t.Errorf("%s: streamed summary diverged:\n got %v\nwant %v", cfg.Name, got, want)
		}
		if stream.TotalWakeups != batch.TotalWakeups || stream.TotalShutdowns != batch.TotalShutdowns {
			t.Errorf("%s: transitions %d/%d want %d/%d", cfg.Name,
				stream.TotalWakeups, stream.TotalShutdowns, batch.TotalWakeups, batch.TotalShutdowns)
		}
		if len(stream.Checkpoints) != len(batch.Checkpoints) {
			t.Fatalf("%s: checkpoint count %d want %d", cfg.Name,
				len(stream.Checkpoints), len(batch.Checkpoints))
		}
		for i := range stream.Checkpoints {
			a, b := stream.Checkpoints[i], batch.Checkpoints[i]
			if a != b {
				t.Errorf("%s: checkpoint %d = %+v want %+v", cfg.Name, i, a, b)
			}
		}
		if stream.AgentDiag != batch.AgentDiag {
			t.Errorf("%s: agent diag %q want %q", cfg.Name, stream.AgentDiag, batch.AgentDiag)
		}
	}
}

// TestSessionObserverHooks checks every Observer callback fires, with counts
// that reconcile against the final Result.
func TestSessionObserverHooks(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(300, 2, 5)
	cfg := hierdrl.RoundRobin(2)
	cfg.DPM = hierdrl.DPMFixedTimeout
	cfg.FixedTimeoutSec = 30
	cfg.CheckpointEvery = 50

	var jobs, checkpoints, wakes, sleeps int
	var lastDone hierdrl.Time
	obs := hierdrl.Observer{
		OnJobDone: func(ts hierdrl.Time, j *hierdrl.ClusterJob) {
			jobs++
			if ts < lastDone {
				t.Errorf("job completions out of order: %v after %v", ts, lastDone)
			}
			lastDone = ts
			if _, ok := j.FinishedAt(); !ok {
				t.Error("OnJobDone with unfinished job")
			}
		},
		OnCheckpoint: func(cp hierdrl.Checkpoint) { checkpoints++ },
		OnModeTransition: func(ts hierdrl.Time, server int, from, to hierdrl.PowerState) {
			if server < 0 || server >= 2 {
				t.Errorf("transition on invalid server %d", server)
			}
			switch {
			case from == hierdrl.StateSleep && to == hierdrl.StateWaking:
				wakes++
			case from == hierdrl.StateActive && to == hierdrl.StateShuttingDown:
				sleeps++
			}
		},
	}
	s, err := hierdrl.NewSession(cfg, hierdrl.WithObserver(obs))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("SubmitTrace: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if jobs != tr.Len() {
		t.Errorf("OnJobDone fired %d times want %d", jobs, tr.Len())
	}
	if checkpoints != len(res.Checkpoints) || checkpoints == 0 {
		t.Errorf("OnCheckpoint fired %d times want %d (>0)", checkpoints, len(res.Checkpoints))
	}
	if int64(wakes) != res.TotalWakeups {
		t.Errorf("observed %d wakeups, result says %d", wakes, res.TotalWakeups)
	}
	if int64(sleeps) != res.TotalShutdowns {
		t.Errorf("observed %d shutdowns, result says %d", sleeps, res.TotalShutdowns)
	}
	if res.TotalShutdowns == 0 {
		t.Error("fixed-timeout run never slept; transition hook untested")
	}
}

// TestSessionSnapshotLive checks mid-run visibility: counts move, energy
// accumulates, and the view reflects the cluster size.
func TestSessionSnapshotLive(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(400, 4, 9)
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(4))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("SubmitTrace: %v", err)
	}
	mid := hierdrl.Time(tr.Jobs[tr.Len()/2].Arrival)
	if err := s.StepUntil(mid); err != nil {
		t.Fatalf("StepUntil: %v", err)
	}
	snap := s.Snapshot()
	if snap.Now != mid {
		t.Errorf("snapshot clock %v want %v", snap.Now, mid)
	}
	if snap.Ingested != int64(tr.Len()) {
		t.Errorf("ingested %d want %d", snap.Ingested, tr.Len())
	}
	if snap.Completed == 0 || snap.Completed >= int64(tr.Len()) {
		t.Errorf("mid-run completed %d want in (0, %d)", snap.Completed, tr.Len())
	}
	if snap.PendingArrivals == 0 {
		t.Error("mid-run pending arrivals should be > 0")
	}
	if snap.EnergykWh <= 0 || snap.TotalPowerW <= 0 {
		t.Errorf("snapshot energy/power: %+v", snap)
	}
	if snap.View == nil || snap.View.M != 4 {
		t.Fatalf("snapshot view: %+v", snap.View)
	}

	// Result before completion is an error and must not poison the session.
	if _, err := s.Result(); err == nil {
		t.Fatal("mid-run Result succeeded")
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	final := s.Snapshot()
	if final.Completed != int64(tr.Len()) || final.PendingArrivals != 0 {
		t.Errorf("final snapshot: %+v", final)
	}
	if final.EnergykWh < snap.EnergykWh {
		t.Error("energy went backwards")
	}
	if _, err := s.Result(); err != nil {
		t.Fatalf("final Result: %v", err)
	}
}

// TestSessionContextCancel checks cooperative cancellation through the
// session's context.
func TestSessionContextCancel(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(200, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(2), hierdrl.WithContext(ctx))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("SubmitTrace: %v", err)
	}
	cancel()
	if err := s.Drain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain after cancel = %v, want context.Canceled", err)
	}
	if err := s.StepUntil(1e9); !errors.Is(err, context.Canceled) {
		t.Fatalf("StepUntil after cancel = %v, want context.Canceled", err)
	}
	if _, err := s.Step(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step after cancel = %v, want context.Canceled", err)
	}
}

// TestSessionClosed checks every entry point rejects a closed session.
func TestSessionClosed(t *testing.T) {
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(2))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Submit(hierdrl.Job{Arrival: 1, Duration: 10, Req: [3]float64{0.1, 0.1, 0.1}}); !errors.Is(err, hierdrl.ErrSessionClosed) {
		t.Errorf("Submit = %v", err)
	}
	if err := s.SubmitTrace(hierdrl.SyntheticTrace(5, 1)); !errors.Is(err, hierdrl.ErrSessionClosed) {
		t.Errorf("SubmitTrace = %v", err)
	}
	if err := s.Drain(); !errors.Is(err, hierdrl.ErrSessionClosed) {
		t.Errorf("Drain = %v", err)
	}
	if _, err := s.Result(); !errors.Is(err, hierdrl.ErrSessionClosed) {
		t.Errorf("Result = %v", err)
	}
}

// TestSessionSubmitValidates checks per-job validation at the streaming
// surface and out-of-order ingestion.
func TestSessionSubmitValidates(t *testing.T) {
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(2))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	bad := []hierdrl.Job{
		{Arrival: -1, Duration: 10, Req: [3]float64{0.1, 0.1, 0.1}},
		{Arrival: 1, Duration: 0, Req: [3]float64{0.1, 0.1, 0.1}},
		{Arrival: 1, Duration: 10, Req: [3]float64{1.5, 0.1, 0.1}},
		{Arrival: 1, Duration: 10, Req: [3]float64{0.1, 0, 0.1}},
	}
	for i, j := range bad {
		if err := s.Submit(j); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	// Out-of-order submission is legal and dispatches in arrival order.
	var order []int
	s2, err := hierdrl.NewSession(hierdrl.RoundRobin(2), hierdrl.WithObserver(hierdrl.Observer{
		OnJobDone: func(_ hierdrl.Time, j *hierdrl.ClusterJob) {
			order = append(order, int(j.Arrival.Seconds()))
		},
	}))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s2.Close()
	for _, at := range []float64{500, 100, 300} {
		if err := s2.Submit(hierdrl.Job{Arrival: at, Duration: 10, Req: [3]float64{0.1, 0.1, 0.1}}); err != nil {
			t.Fatalf("Submit(%v): %v", at, err)
		}
	}
	if err := s2.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(order) != 3 || order[0] != 100 || order[1] != 300 || order[2] != 500 {
		t.Fatalf("completion order %v, want arrivals served in time order", order)
	}
}

// TestSessionSubmitTraceAtomic checks a malformed trace is rejected without
// ingesting anything: the session stays clean and a subsequent valid
// submission runs to completion.
func TestSessionSubmitTraceAtomic(t *testing.T) {
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(2))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	bad := &hierdrl.Trace{Jobs: []hierdrl.Job{
		{Arrival: 100, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}},
		{Arrival: 50, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}},
		{Arrival: 10, Duration: -1, Req: [3]float64{0.1, 0.1, 0.1}},
	}}
	if err := s.SubmitTrace(bad); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if s.Ingested() != 0 || s.Pending() != 0 {
		t.Fatalf("partial ingestion: ingested=%d pending=%d", s.Ingested(), s.Pending())
	}
	good := hierdrl.SyntheticTraceForCluster(100, 2, 1)
	if err := s.SubmitTrace(good); err != nil {
		t.Fatalf("SubmitTrace after rejection: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if res, err := s.Result(); err != nil || res.Summary.Jobs != 100 {
		t.Fatalf("Result after rejected batch: %v (%+v)", err, res)
	}
}

// TestSessionIncrementalDrains checks a session survives multiple
// submit/drain rounds — the long-lived usage Run can't express.
func TestSessionIncrementalDrains(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(300, 3, 11)
	s, err := hierdrl.NewSession(hierdrl.RoundRobin(3))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	third := tr.Len() / 3
	for part := 0; part < 3; part++ {
		for _, j := range tr.Jobs[part*third : (part+1)*third] {
			if err := s.Submit(j); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("Drain %d: %v", part, err)
		}
		if got := s.Completed(); got != int64((part+1)*third) {
			t.Fatalf("after round %d: completed %d want %d", part, got, (part+1)*third)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Summary.Jobs != 3*third {
		t.Fatalf("summary jobs %d want %d", res.Summary.Jobs, 3*third)
	}
}

// --- registry extension points ---

// testGreedyAlloc is a custom allocator registered through the public
// registry: it picks the lowest-CPU-committed awake server.
type testGreedyAlloc struct{}

func (testGreedyAlloc) Name() string { return "test-greedy" }
func (testGreedyAlloc) Allocate(_ *hierdrl.ClusterJob, v *hierdrl.ClusterView) int {
	best, bestLoad := 0, math.Inf(1)
	for i := 0; i < v.M; i++ {
		if load := v.Util[i][0] + v.Pending[i][0]; load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// testNapManager is a custom power manager: fixed 45 s timeout.
type testNapManager struct{}

func (testNapManager) OnIdle(hierdrl.Time, *hierdrl.Server) float64 { return 45 }
func (testNapManager) OnArrival(hierdrl.Time, *hierdrl.Server, hierdrl.PowerState) {
}
func (testNapManager) Observe(hierdrl.Time, float64, int) {}

// testConstPredictor always predicts a 60 s gap.
type testConstPredictor struct{}

func (testConstPredictor) ObserveArrival(float64) {}
func (testConstPredictor) Predict() float64       { return 60 }

func init() {
	errDeliberate := errors.New("deliberate failure")
	hierdrl.RegisterAllocator("test-failing-alloc", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Allocator, error) {
		return nil, errDeliberate
	})
	hierdrl.RegisterPowerManager("test-failing-pm", func(*hierdrl.Config, int, *hierdrl.RNG) (hierdrl.PowerManager, error) {
		return nil, errDeliberate
	})
	hierdrl.RegisterPredictor("test-failing-pred", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Predictor, error) {
		return nil, errDeliberate
	})
	hierdrl.RegisterAllocator("test-greedy", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Allocator, error) {
		return testGreedyAlloc{}, nil
	})
	hierdrl.RegisterPowerManager("test-nap", func(*hierdrl.Config, int, *hierdrl.RNG) (hierdrl.PowerManager, error) {
		return testNapManager{}, nil
	})
	hierdrl.RegisterPredictor("test-const", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Predictor, error) {
		return testConstPredictor{}, nil
	})
}

// TestCustomPoliciesViaRegistry is the registry acceptance test: custom
// Allocator, PowerManager and Predictor implementations resolve through the
// Config strings and run end to end.
func TestCustomPoliciesViaRegistry(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(400, 4, 17)

	// Custom allocator + custom power manager.
	cfg := hierdrl.RoundRobin(4)
	cfg.Name = "custom"
	cfg.Alloc = "test-greedy"
	cfg.DPM = "test-nap"
	res, err := hierdrl.Run(cfg, tr)
	if err != nil {
		t.Fatalf("Run with custom policies: %v", err)
	}
	if res.Summary.Jobs != tr.Len() {
		t.Fatalf("jobs %d want %d", res.Summary.Jobs, tr.Len())
	}
	if res.TotalShutdowns == 0 {
		t.Error("custom nap manager never slept")
	}

	// Custom predictor feeding the built-in RL power manager.
	cfg2 := hierdrl.Hierarchical(4)
	cfg2.Alloc = hierdrl.AllocRoundRobin // keep the test cheap: no DRL tier
	cfg2.Predictor = "test-const"
	res2, err := hierdrl.Run(cfg2, tr)
	if err != nil {
		t.Fatalf("Run with custom predictor: %v", err)
	}
	if res2.Summary.Jobs != tr.Len() {
		t.Fatalf("jobs %d want %d", res2.Summary.Jobs, tr.Len())
	}

	// Unknown names still fail validation.
	bad := hierdrl.RoundRobin(4)
	bad.Alloc = "no-such-alloc"
	if _, err := hierdrl.NewSession(bad); err == nil {
		t.Error("unknown allocator accepted")
	}
	bad = hierdrl.RoundRobin(4)
	bad.DPM = "no-such-dpm"
	if _, err := hierdrl.NewSession(bad); err == nil {
		t.Error("unknown power manager accepted")
	}
	bad = hierdrl.Hierarchical(4)
	bad.Alloc = hierdrl.AllocRoundRobin
	bad.Predictor = "no-such-predictor"
	if _, err := hierdrl.NewSession(bad); err == nil {
		t.Error("unknown predictor accepted")
	}
}

// TestFactoryErrorsSurfaceFromNewSession checks a registered factory that
// fails (the documented validate-in-factory pattern for external policies)
// produces an error from NewSession on every extension point — never a
// panic.
func TestFactoryErrorsSurfaceFromNewSession(t *testing.T) {
	cfg := hierdrl.RoundRobin(2)
	cfg.Alloc = "test-failing-alloc"
	if _, err := hierdrl.NewSession(cfg); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("failing allocator factory: err = %v", err)
	}
	cfg = hierdrl.RoundRobin(2)
	cfg.DPM = "test-failing-pm"
	if _, err := hierdrl.NewSession(cfg); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("failing power-manager factory: err = %v", err)
	}
	cfg = hierdrl.Hierarchical(2)
	cfg.Alloc = hierdrl.AllocRoundRobin
	cfg.Predictor = "test-failing-pred"
	if _, err := hierdrl.NewSession(cfg); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("failing predictor factory: err = %v", err)
	}
}

// TestRegisterPanicsOnMisuse pins the registry's misuse contract.
func TestRegisterPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("duplicate allocator", func() {
		hierdrl.RegisterAllocator("test-greedy", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Allocator, error) {
			return testGreedyAlloc{}, nil
		})
	})
	expectPanic("built-in allocator override", func() {
		hierdrl.RegisterAllocator(hierdrl.AllocRoundRobin, func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Allocator, error) {
			return testGreedyAlloc{}, nil
		})
	})
	expectPanic("nil factory", func() {
		hierdrl.RegisterPowerManager("test-nil", nil)
	})
	expectPanic("empty name", func() {
		hierdrl.RegisterPredictor("", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Predictor, error) {
			return testConstPredictor{}, nil
		})
	})
}

// TestValidateClusterOverride pins the validate() fix: explicit Cluster
// overrides are checked for completeness and consistency with M, from both
// Run and NewSession.
func TestValidateClusterOverride(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(20, 4, 1)

	// Mismatched M must fail.
	cfg := hierdrl.RoundRobin(4)
	cfg.Cluster = cluster.DefaultConfig(6)
	if _, err := hierdrl.Run(cfg, tr); err == nil {
		t.Error("Run accepted Cluster.M=6 with M=4")
	}
	if _, err := hierdrl.NewSession(cfg); err == nil {
		t.Error("NewSession accepted Cluster.M=6 with M=4")
	}

	// A partial override (fields set but M left zero) used to be silently
	// discarded in favor of the derived default; now it is an error.
	cfg = hierdrl.RoundRobin(4)
	cfg.Cluster.HotSpotThreshold = 0.9
	if _, err := hierdrl.NewSession(cfg); err == nil {
		t.Error("NewSession accepted a partial Cluster override")
	}

	// An explicit but internally invalid override fails eagerly.
	cfg = hierdrl.RoundRobin(4)
	cfg.Cluster = cluster.DefaultConfig(4)
	cfg.Cluster.HotSpotThreshold = 1.5
	if _, err := hierdrl.NewSession(cfg); err == nil {
		t.Error("NewSession accepted HotSpotThreshold=1.5")
	}

	// A complete, consistent override still works.
	cfg = hierdrl.RoundRobin(4)
	cfg.Cluster = cluster.DefaultConfig(4)
	cfg.Cluster.Server.TonSeconds = 10
	if _, err := hierdrl.Run(cfg, tr); err != nil {
		t.Errorf("valid explicit override rejected: %v", err)
	}
}
