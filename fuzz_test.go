package hierdrl_test

import (
	"bytes"
	"testing"

	"hierdrl"
)

// FuzzRestoreState throws arbitrary bytes at the snapshot restore path. The
// seed corpus is one pristine mid-run snapshot (from a fault-free run — the
// fault-enabled layouts are covered by TestCheckpointResumeBitwise) plus
// every corruption class of snapshotCorruptions, so the fuzzer starts from
// the exact byte layouts the rejection table pins and mutates outward. The
// invariant: Restore either rejects the input with an error or returns a
// session that can actually be driven — it must never panic, hang on a
// length field, or accept bytes it cannot replay.
func FuzzRestoreState(f *testing.F) {
	good := smallSnapshot(f)
	f.Add(good)
	for _, tc := range snapshotCorruptions {
		f.Add(tc.mutate(append([]byte(nil), good...)))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := hierdrl.Restore(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for damaged input
		}
		defer s.Close()
		// An accepted snapshot must be drivable: advance a bounded number of
		// events without panicking (a short prefix is enough — full-run
		// equivalence belongs to TestCheckpointResumeBitwise).
		for i := 0; i < 200; i++ {
			more, err := s.Step()
			if err != nil || !more {
				return
			}
		}
	})
}
