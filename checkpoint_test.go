package hierdrl_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hierdrl"
)

// warmTrace is the small DRL warmup workload shared by the checkpoint tests.
func warmTrace(m int) *hierdrl.Trace {
	return hierdrl.SyntheticTraceForCluster(150, m, 1001)
}

// expCrashCfg arms aggressive exponential faults on a least-loaded baseline.
func expCrashCfg(m int, retry hierdrl.RetryKind) hierdrl.Config {
	cfg := hierdrl.RoundRobin(m)
	cfg.Name = "ckpt-faults"
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.Faults = hierdrl.FaultExpCrash
	cfg.MTTFSec = 20000
	cfg.MTTRSec = 600
	cfg.Retry = retry
	return cfg
}

func drainResult(t *testing.T, s *hierdrl.Session) *hierdrl.Result {
	t.Helper()
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return res
}

// stepToCompleted advances the session one Step at a time until at least n
// jobs completed, leaving it at a decision-epoch boundary mid-run.
func stepToCompleted(t testing.TB, s *hierdrl.Session, n int64) {
	t.Helper()
	for s.Completed() < n {
		ok, err := s.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !ok {
			t.Fatalf("engine idle at %d completed, wanted to pause at %d", s.Completed(), n)
		}
	}
}

// stepUntilSnapshot keeps stepping until cond holds on a live snapshot, so a
// checkpoint can be taken in a specific fault state (mid-outage, mid-drain,
// mid-degrade). Fails if cond never holds before bound jobs complete — the
// mid-fault checkpoint would otherwise be vacuous.
func stepUntilSnapshot(t testing.TB, s *hierdrl.Session, bound int64, what string, cond func(hierdrl.SessionSnapshot) bool) {
	t.Helper()
	var snap hierdrl.SessionSnapshot
	for {
		s.SnapshotInto(&snap)
		if cond(snap) {
			return
		}
		if s.Completed() >= bound {
			t.Fatalf("no %s observed by %d completed; mid-fault checkpoint is vacuous", what, bound)
		}
		ok, err := s.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !ok {
			t.Fatalf("engine idle at %d completed while waiting for %s", s.Completed(), what)
		}
	}
}

// TestCheckpointResumeBitwise is the tentpole acceptance test: for every
// execution tier and subsystem mix, a run that is checkpointed mid-flight,
// abandoned, and restored from the snapshot must produce a final Result
// bitwise identical to the uninterrupted reference — and the act of writing
// the checkpoint must not perturb the original run either.
func TestCheckpointResumeBitwise(t *testing.T) {
	cases := []struct {
		name   string
		cfg    func() hierdrl.Config
		jobs   int
		shards int
		// mid optionally keeps stepping past jobs/2 until the snapshot shows
		// a specific fault state, so the checkpoint lands mid-outage /
		// mid-degrade / mid-drain (midWhat names it in failures).
		mid     func(hierdrl.SessionSnapshot) bool
		midWhat string
	}{
		{"strict/drl-fixed-timeout", func() hierdrl.Config {
			cfg := hierdrl.FixedTimeoutBaseline(6, 45)
			cfg.WarmupTrace = warmTrace(6)
			cfg.CheckpointEvery = 40
			return cfg
		}, 240, 1, nil, ""},
		{"strict/hierarchical-lstm", func() hierdrl.Config {
			cfg := hierdrl.Hierarchical(6)
			cfg.WarmupTrace = warmTrace(6)
			return cfg
		}, 220, 1, nil, ""},
		{"strict/faults-backoff", func() hierdrl.Config {
			cfg := expCrashCfg(6, hierdrl.RetryBackoff)
			cfg.CheckpointEvery = 250
			return cfg
		}, 2000, 1, nil, ""},
		{"sharded-p2/least-loaded", func() hierdrl.Config {
			cfg := hierdrl.RoundRobin(8)
			cfg.Alloc = hierdrl.AllocLeastLoaded
			cfg.CheckpointEvery = 250
			return cfg
		}, 2000, 2, nil, ""},
		{"sharded-p4/drl-adhoc", func() hierdrl.Config {
			cfg := hierdrl.DRLOnly(8)
			cfg.WarmupTrace = warmTrace(8)
			return cfg
		}, 240, 4, nil, ""},
		{"sharded-p2/faults-immediate", func() hierdrl.Config {
			cfg := expCrashCfg(8, hierdrl.RetryImmediate)
			return cfg
		}, 2000, 2, nil, ""},
		{"strict/faults-correlated-midoutage", func() hierdrl.Config {
			cfg := expCrashCfg(8, hierdrl.RetryBackoff)
			cfg.Name = "ckpt-correlated"
			cfg.Faults = hierdrl.FaultCorrelatedCrash
			cfg.Domains = hierdrl.EqualDomains(4, 8)
			return cfg
		}, 2000, 1, func(sn hierdrl.SessionSnapshot) bool {
			return sn.ServersDown > 0 // a whole rack is down right now
		}, "rack outage"},
		{"sharded-p2/faults-degrade-middegrade", func() hierdrl.Config {
			cfg := expCrashCfg(8, hierdrl.RetryImmediate)
			cfg.Name = "ckpt-degrade"
			cfg.Faults = hierdrl.FaultDegrade
			cfg.DegradeFactor = 0.25
			cfg.MTTFSec = 8000
			cfg.MTTRSec = 2000
			return cfg
		}, 2000, 2, func(sn hierdrl.SessionSnapshot) bool {
			for _, sp := range sn.View.Speed {
				if sp < 1 { // a server is running fail-slow right now
					return true
				}
			}
			return false
		}, "degraded server"},
		{"sharded-p2/faults-drain-middrain", func() hierdrl.Config {
			cfg := expCrashCfg(8, hierdrl.RetryImmediate)
			cfg.Name = "ckpt-drain"
			cfg.Alloc = hierdrl.AllocPackFit
			cfg.Faults = hierdrl.FaultDrain
			cfg.DrainEverySec = 6000
			cfg.DrainWindowSec = 400
			return cfg
		}, 2000, 2, func(sn hierdrl.SessionSnapshot) bool {
			return sn.ServersUnavailable > 0 // a server is draining or powered off
		}, "maintenance window"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			tr := hierdrl.SyntheticTraceForCluster(tc.jobs, cfg.M, 1)

			// Reference: the identical run, never checkpointed.
			ref, err := hierdrl.NewSession(cfg, hierdrl.WithShards(tc.shards))
			if err != nil {
				t.Fatalf("reference session: %v", err)
			}
			defer ref.Close()
			if err := ref.SubmitTrace(tr); err != nil {
				t.Fatal(err)
			}
			refRes := drainResult(t, ref)

			// Original: pause mid-run, snapshot, then keep going.
			orig, err := hierdrl.NewSession(cfg, hierdrl.WithShards(tc.shards))
			if err != nil {
				t.Fatalf("original session: %v", err)
			}
			defer orig.Close()
			if err := orig.SubmitTrace(tr); err != nil {
				t.Fatal(err)
			}
			stepToCompleted(t, orig, int64(tc.jobs/2))
			if tc.mid != nil {
				stepUntilSnapshot(t, orig, int64(tc.jobs)*9/10, tc.midWhat, tc.mid)
			}
			var snap bytes.Buffer
			if err := orig.Checkpoint(&snap); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			origRes := drainResult(t, orig)
			if !reflect.DeepEqual(refRes, origRes) {
				t.Fatalf("writing a checkpoint perturbed the run:\nref:  %+v\norig: %+v",
					refRes.Summary, origRes.Summary)
			}

			// Restored: rebuild from the snapshot alone and finish the run.
			restored, err := hierdrl.Restore(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer restored.Close()
			resRes := drainResult(t, restored)
			if !reflect.DeepEqual(refRes, resRes) {
				t.Fatalf("resumed run diverges from uninterrupted reference:\nref:     %+v\nresumed: %+v",
					refRes.Summary, resRes.Summary)
			}
			if len(resRes.Checkpoints) != len(refRes.Checkpoints) {
				t.Fatalf("checkpoint series %d vs %d entries",
					len(resRes.Checkpoints), len(refRes.Checkpoints))
			}
		})
	}
}

// smallSnapshot builds one valid mid-run snapshot for the corruption tests.
func smallSnapshot(t testing.TB) []byte {
	t.Helper()
	cfg := hierdrl.RoundRobin(4)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	tr := hierdrl.SyntheticTraceForCluster(300, 4, 1)
	s, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	stepToCompleted(t, s, 150)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// snapshotCorruptions is the corruption-class table shared by the rejection
// test and FuzzRestoreState's seed corpus. Container layout
// (internal/checkpoint): magic [0,8), version u32 [8,12), fingerprint u64
// [12,20), nSections u32 [20,24), then the section table — first entry
// nameLen u16 [24,26), name "config" [26,32), payloadLen u64 [32,40).
var snapshotCorruptions = []struct {
	name   string
	mutate func(b []byte) []byte
	want   error
}{
	{"empty-file", func(b []byte) []byte { return nil }, hierdrl.ErrCorrupt},
	{"truncated-header", func(b []byte) []byte { return b[:10] }, hierdrl.ErrCorrupt},
	{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, hierdrl.ErrCorrupt},
	{"unsupported-version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 99)
		return b
	}, hierdrl.ErrVersion},
	{"fingerprint-flip", func(b []byte) []byte { b[12] ^= 0xFF; return b }, hierdrl.ErrConfigMismatch},
	{"implausible-section-count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[20:], 100000)
		return b
	}, hierdrl.ErrCorrupt},
	{"section-table-dropped", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[20:], 0)
		return b
	}, hierdrl.ErrCorrupt},
	{"section-name-tampered", func(b []byte) []byte { b[26] ^= 0x20; return b }, hierdrl.ErrCorrupt},
	{"section-length-huge", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[32:], 1<<40)
		return b
	}, hierdrl.ErrCorrupt},
	{"payload-truncated", func(b []byte) []byte { return b[:len(b)-5] }, hierdrl.ErrCorrupt},
	{"payload-bit-flip-tail", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, hierdrl.ErrCorrupt},
	{"payload-bit-flip-mid", func(b []byte) []byte { b[len(b)*3/4] ^= 0x01; return b }, hierdrl.ErrCorrupt},
}

// TestRestoreRejectsCorruptSnapshots mutates a valid snapshot one corruption
// class at a time and pins the sentinel each class must surface.
func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	good := smallSnapshot(t)
	if s, err := hierdrl.Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	} else {
		s.Close()
	}

	for _, tc := range snapshotCorruptions {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mutant := tc.mutate(append([]byte(nil), good...))
			s, err := hierdrl.Restore(bytes.NewReader(mutant))
			if err == nil {
				s.Close()
				t.Fatal("corrupt snapshot accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestSessionWeightsGoldenRoundTrip covers the weights-only export: saving a
// trained session's policy, loading it into a fresh session, and re-saving
// must reproduce the export byte for byte (so the loaded networks are
// bitwise-identical — internal/global's TestAgentWeightsRoundTrip pins the
// matching Q-value equality at the network level). Sessions without a DRL
// agent reject the API.
func TestSessionWeightsGoldenRoundTrip(t *testing.T) {
	cfg := hierdrl.DRLOnly(5)
	cfg.WarmupTrace = warmTrace(5)
	tr := hierdrl.SyntheticTraceForCluster(200, 5, 1)

	s1, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s1.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	drainResult(t, s1)
	var w1 bytes.Buffer
	if err := s1.SaveWeights(&w1); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}

	cfg2 := cfg
	cfg2.WarmupTrace = nil // fresh, untrained agent
	s2, err := hierdrl.NewSession(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadWeights(bytes.NewReader(w1.Bytes())); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	var w2 bytes.Buffer
	if err := s2.SaveWeights(&w2); err != nil {
		t.Fatalf("re-SaveWeights: %v", err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatalf("weights export not golden: %d vs %d bytes differ", w1.Len(), w2.Len())
	}

	s3, err := hierdrl.NewSession(hierdrl.RoundRobin(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if err := s3.SaveWeights(io.Discard); err == nil {
		t.Fatal("SaveWeights accepted on a session without a DRL agent")
	}
	if err := s3.LoadWeights(bytes.NewReader(w1.Bytes())); err == nil {
		t.Fatal("LoadWeights accepted on a session without a DRL agent")
	}
}

// TestSessionCloseIdempotentAndCheckpointClosed pins the small-fix satellite:
// repeated Close stays a nil no-op, and Checkpoint on a closed session
// surfaces ErrSessionClosed instead of serializing torn-down state.
func TestSessionCloseIdempotentAndCheckpointClosed(t *testing.T) {
	cfg := hierdrl.RoundRobin(4)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	s, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTrace(hierdrl.SyntheticTraceForCluster(50, 4, 1)); err != nil {
		t.Fatal(err)
	}
	drainResult(t, s)
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if err := s.Checkpoint(io.Discard); !errors.Is(err, hierdrl.ErrSessionClosed) {
		t.Fatalf("Checkpoint after Close: got %v, want ErrSessionClosed", err)
	}
}

// TestCheckpointAfterErrorReturnsLatched: once a run fails terminally
// (context cancellation here), Checkpoint must refuse with the latched error
// and write nothing — a partial failed run is not a resumable state.
func TestCheckpointAfterErrorReturnsLatched(t *testing.T) {
	cfg := hierdrl.RoundRobin(4)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	ctx, cancel := context.WithCancel(context.Background())
	s, err := hierdrl.NewSession(cfg, hierdrl.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(hierdrl.SyntheticTraceForCluster(200, 4, 1)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s.Drain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain after cancel: got %v, want context.Canceled", err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("Checkpoint after latched error: got %v, want wrapped context.Canceled", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Checkpoint wrote %d bytes despite refusing", buf.Len())
	}
}

// TestAutoCheckpointRotationAndResume: WithAutoCheckpoint writes rotated
// generations (path, path.1, path.2) without perturbing the run, never
// leaves its staging file behind, and the newest snapshot resumes to the
// bitwise-identical final Result.
func TestAutoCheckpointRotationAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cfg := hierdrl.RoundRobin(6)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.CheckpointEvery = 200
	tr := hierdrl.SyntheticTraceForCluster(1200, 6, 1)

	ref, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	refRes := drainResult(t, ref)

	s, err := hierdrl.NewSession(cfg, hierdrl.WithAutoCheckpoint(path, 100))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	autoRes := drainResult(t, s)
	if !reflect.DeepEqual(refRes, autoRes) {
		t.Fatalf("auto-checkpointing perturbed the run:\nref:  %+v\nauto: %+v",
			refRes.Summary, autoRes.Summary)
	}

	for _, f := range []string{path, path + ".1", path + ".2"} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("rotated snapshot %s missing: %v", f, err)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("staging file survived: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := hierdrl.Restore(f)
	f.Close()
	if err != nil {
		t.Fatalf("restore newest auto snapshot: %v", err)
	}
	defer restored.Close()
	resRes := drainResult(t, restored)
	if !reflect.DeepEqual(refRes, resRes) {
		t.Fatalf("resume from auto snapshot diverges:\nref:     %+v\nresumed: %+v",
			refRes.Summary, resRes.Summary)
	}
}
