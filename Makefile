GO ?= go

.PHONY: all build test race vet bench bench-full clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the kernel + hot-path micro-benchmarks and records them as
# BENCH_kernels.json (benchstat-compatible: the "raw" array holds the
# verbatim benchmark lines). Tracks the perf trajectory across PRs.
bench:
	$(GO) test -run=NONE \
		-bench='BenchmarkMatMulVec$$|BenchmarkMatMulMat$$|BenchmarkQNetInferBatch$$|BenchmarkQNetworkInference$$|BenchmarkQNetworkTrainBatch$$|BenchmarkLSTMPredict$$' \
		-benchmem -count=3 . | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@echo wrote BENCH_kernels.json

# bench-full additionally regenerates the paper tables/figures benchmarks
# (minutes, not seconds).
bench-full:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson > BENCH_full.json
	@echo wrote BENCH_full.json

clean:
	rm -f BENCH_kernels.json BENCH_full.json
