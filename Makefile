GO ?= go

.PHONY: all build test race vet bench bench-full profile examples-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the kernel + hot-path micro-benchmarks and records them as
# BENCH_kernels.json (benchstat-compatible: the "raw" array holds the
# verbatim benchmark lines; the event-engine rows additionally land in the
# "sim" section). Tracks the perf trajectory across PRs.
bench:
	$(GO) test -run=NONE \
		-bench='BenchmarkMatMulVec$$|BenchmarkMatMulMat$$|BenchmarkQNetInferBatch$$|BenchmarkQNetworkInference$$|BenchmarkQNetworkTrainBatch$$|BenchmarkLSTMPredict$$|BenchmarkLSTMBPTT$$|BenchmarkEventLoop$$|BenchmarkSnapshot$$|BenchmarkAllocateEpoch$$' \
		-benchmem -count=3 . | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@echo wrote BENCH_kernels.json

# bench-full additionally regenerates the paper tables/figures benchmarks
# (minutes, not seconds).
bench-full:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson > BENCH_full.json
	@echo wrote BENCH_full.json

# examples-smoke builds and runs every examples/ program with a tiny job
# count, exercising the public Session/registry API end to end (CI runs it
# so API drift breaks the build, not users).
examples-smoke:
	$(GO) run ./examples/quickstart -jobs 300 -warmup 80
	$(GO) run ./examples/datacenter -servers 6 -jobs 250 -warmup 60
	$(GO) run ./examples/powermanager -jobs 150
	$(GO) run ./examples/tradeoff -jobs 200 -warmup 50
	$(GO) run ./examples/pluggable -jobs 200 -servers 4

# profile writes CPU and allocation pprof profiles of the headline
# experiment benchmark (inspect with `go tool pprof cpu.pprof`).
profile:
	$(GO) test -run=NONE -bench='BenchmarkTable1_M30$$' -benchtime=3x \
		-cpuprofile cpu.pprof -memprofile mem.pprof -o hierdrl-bench.test .
	@echo wrote cpu.pprof mem.pprof '(binary: hierdrl-bench.test)'

clean:
	rm -f BENCH_kernels.json BENCH_full.json cpu.pprof mem.pprof hierdrl-bench.test
