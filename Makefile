GO ?= go

.PHONY: all build test race vet bench bench-kernels bench-table1 bench-scale bench-check bench-full scale scale-smoke chaos-smoke crash-smoke scenario-smoke obs-smoke profile examples-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The kernel micro-benchmark set (also the CI perf-regression smoke).
KERNEL_BENCH = BenchmarkMatMulVec$$|BenchmarkMatMulMat$$|BenchmarkQNetInferBatch$$|BenchmarkQNetworkInference$$|BenchmarkQNetworkTrainBatch$$|BenchmarkLSTMPredict$$|BenchmarkLSTMBPTT$$|BenchmarkEventLoop$$|BenchmarkSnapshot$$|BenchmarkAllocateEpoch$$|BenchmarkShardedEpoch$$|BenchmarkTDigestAdd$$|BenchmarkTDigestMerge$$|BenchmarkEpochSpanRecord$$
KERNEL_PKGS = . ./internal/telemetry

# bench records the full perf trajectory of a PR as three committed JSONs:
#   BENCH_kernels.json — kernel + hot-path micro-benchmarks
#   BENCH_table1.json  — the end-to-end Table I run (ns/op, allocs/op, bytes)
#   BENCH_scale.json   — the scale-10k preset at P=1/2/4/8 shards
# (benchstat-compatible: the "raw" arrays hold the verbatim benchmark lines.)
bench: bench-kernels bench-table1 bench-scale

bench-kernels:
	$(GO) test -run=NONE \
		-bench='$(KERNEL_BENCH)' \
		-benchmem -count=3 $(KERNEL_PKGS) | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@echo wrote BENCH_kernels.json

bench-table1:
	$(GO) test -run=NONE -bench='BenchmarkTable1_M30$$' -benchtime=1x -benchmem -count=3 . \
		| $(GO) run ./cmd/benchjson > BENCH_table1.json
	@echo wrote BENCH_table1.json

bench-scale:
	$(GO) run ./cmd/scalebench -shards 1,2,4,8 -json BENCH_scale.json

# bench-check is the CI perf-regression smoke: rerun the kernel set plus the
# Table I benchmark and gate against the committed baselines (alloc-count
# growth always fails; >15% ns/op fails when the cpu matches the baseline's,
# and is a warning across different machines).
bench-check:
	( $(GO) test -run=NONE -bench='$(KERNEL_BENCH)' -benchmem -count=3 $(KERNEL_PKGS) ; \
	  $(GO) test -run=NONE -bench='BenchmarkTable1_M30$$' -benchtime=1x -benchmem -count=1 . ) \
		| $(GO) run ./cmd/benchguard BENCH_kernels.json BENCH_table1.json

# scale prints the sharded engine's speedup table for the scale-10k preset
# at P = 1..NumCPU on this machine; scale-smoke is the reduced CI variant
# (small runners: 2 shards, 1/5 cluster, 1/10 workload).
scale:
	$(GO) run ./cmd/scalebench -cpus

scale-smoke:
	$(GO) run ./cmd/scalebench -shards 1,2 -m 2000 -jobs 200000

# chaos-smoke is the fault-injection CI gate: the observer hammer (crash/
# repair/retry/degrade/drain hooks plus mid-run snapshots at P = 1/2/4), the
# cross-run bitwise reproducibility checks, and the fault-matrix smoke
# (correlated-crash / degrade / maintenance-drain at P = 1/2, fingerprint-
# pinned), all under the race detector.
chaos-smoke:
	$(GO) test -race -run 'TestFaultObserverHammer|TestFaultMatrixObserverHammer|TestFaultReproducibleAcrossRuns|TestNewFaultModelsReproducibleAcrossRuns' -v .

# crash-smoke is the durability CI gate: the mid-run checkpoint/restore
# bitwise matrix across both tiers (incl. fault runs), the corrupt-snapshot
# rejection table, and the end-to-end SIGKILL-and-resume drill against the
# hiersim binary.
crash-smoke:
	$(GO) test -run 'TestCheckpointResumeBitwise|TestRestoreRejectsCorruptSnapshots|TestAutoCheckpointRotationAndResume|TestCrashResumeHarnessCLI' -v .

# scenario-smoke is the workload-subsystem CI gate: every registered
# scenario's Summary must be bitwise identical at P = 1/2/4 shards and run to
# run, the scenario CSV round trip must replay bit for bit, and a single-class
# speed-1.0 cluster must match the homogeneous cluster exactly — all under
# the race detector.
scenario-smoke:
	$(GO) test -race -run 'TestScenarioBitwiseAcrossShards|TestScenarioCSVRoundTrip|TestHomogeneousClassesBitwiseIdentical' -v .

# obs-smoke is the observability CI gate: the live /metrics + /snapshot scrape
# of a sharded fault run with a t-digest p99 accuracy check, the Chrome
# trace-event dump, the telemetry-is-bitwise-invisible pin, and the
# sketch-checkpoint round trip — all under the race detector — plus the
# telemetry package's own zero-alloc and merge-determinism pins.
obs-smoke:
	$(GO) test -race -run 'TestObsSmoke|TestTelemetryPreservesBitwiseMetrics|TestSketchOnlySummary|TestEpochTraceChromeJSON|TestEpochTraceRequiresShards|TestCheckpointRoundTripSketches' -v .
	$(GO) test -race ./internal/telemetry

# bench-full additionally regenerates the paper tables/figures benchmarks
# (minutes, not seconds).
bench-full:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson > BENCH_full.json
	@echo wrote BENCH_full.json

# examples-smoke builds and runs every examples/ program with a tiny job
# count, exercising the public Session/registry API end to end (CI runs it
# so API drift breaks the build, not users).
examples-smoke:
	$(GO) run ./examples/quickstart -jobs 300 -warmup 80
	$(GO) run ./examples/datacenter -servers 6 -jobs 250 -warmup 60
	$(GO) run ./examples/powermanager -jobs 150
	$(GO) run ./examples/tradeoff -jobs 200 -warmup 50
	$(GO) run ./examples/pluggable -jobs 200 -servers 4
	$(GO) run ./examples/scenario -scenario mixed-het -jobs 400

# profile writes CPU and allocation pprof profiles of the headline
# experiment benchmark (inspect with `go tool pprof cpu.pprof`).
profile:
	$(GO) test -run=NONE -bench='BenchmarkTable1_M30$$' -benchtime=3x \
		-cpuprofile cpu.pprof -memprofile mem.pprof -o hierdrl-bench.test .
	@echo wrote cpu.pprof mem.pprof '(binary: hierdrl-bench.test)'

clean:
	rm -f BENCH_kernels.json BENCH_full.json cpu.pprof mem.pprof hierdrl-bench.test
