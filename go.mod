module hierdrl

go 1.22
