package hierdrl

import (
	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// newAdamForAblation keeps the nn import out of experiments.go's public
// surface.
func newAdamForAblation(lr float64) nn.Optimizer { return nn.NewAdam(lr) }

// randomView synthesizes a plausible cluster snapshot for offline ablation
// training.
func randomView(m int, rng *mat.RNG) *cluster.View {
	v := &cluster.View{
		M:        m,
		Util:     make([]cluster.Resources, m),
		Pending:  make([]cluster.Resources, m),
		QueueLen: make([]int, m),
		InSystem: make([]int, m),
		State:    make([]cluster.PowerState, m),
	}
	for i := 0; i < m; i++ {
		cpu := rng.Float64()
		v.Util[i] = cluster.Resources{cpu, cpu * rng.Float64(), cpu * rng.Float64()}
		v.State[i] = cluster.StateActive
	}
	return v
}

// randomJob synthesizes a plausible arriving job for offline ablation
// training.
func randomJob(rng *mat.RNG) *cluster.Job {
	cpu := 0.02 + 0.3*rng.Float64()
	return &cluster.Job{
		ID:       0,
		Duration: 60 + rng.Float64()*7000,
		Req:      cluster.Resources{cpu, cpu * 0.8, cpu * 0.4},
		Server:   -1,
	}
}
