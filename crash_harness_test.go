package hierdrl_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestCrashResumeHarnessCLI is the end-to-end crash drill: build hiersim,
// run it with periodic checkpointing, SIGKILL it mid-run (no cleanup, no
// signal handler — a real crash), resume from the snapshot file, and require
// the resumed run's printed summary to be byte-identical to an uninterrupted
// reference run.
func TestCrashResumeHarnessCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills child processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hiersim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hiersim")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hiersim: %v\n%s", err, out)
	}

	args := []string{"-system", "round-robin", "-servers", "8", "-jobs", "40000", "-seed", "5"}

	var refOut bytes.Buffer
	ref := exec.Command(bin, args...)
	ref.Stdout = &refOut
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	ck := filepath.Join(dir, "crash.ckpt")
	var crashOut bytes.Buffer
	crash := exec.Command(bin, append(append([]string{}, args...),
		"-checkpoint", ck, "-checkpoint-every", "300")...)
	crash.Stdout = &crashOut
	if err := crash.Start(); err != nil {
		t.Fatalf("start checkpointed run: %v", err)
	}
	// Kill the instant the first snapshot generation lands. If the run
	// finishes before we can kill it, the final snapshot still resumes (to a
	// no-op drain), so the comparison below stays valid either way.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ck); err == nil {
			break
		}
		if time.Now().After(deadline) {
			crash.Process.Kill()
			crash.Wait()
			t.Fatalf("no snapshot appeared within 30s; partial output:\n%s", crashOut.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	crash.Process.Signal(syscall.SIGKILL)
	crash.Wait() // exit state is irrelevant — the snapshot file is the contract

	var resOut bytes.Buffer
	res := exec.Command(bin, "-resume", ck)
	res.Stdout = &resOut
	if err := res.Run(); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !bytes.Equal(refOut.Bytes(), resOut.Bytes()) {
		t.Fatalf("resumed output differs from uninterrupted reference\n--- reference ---\n%s--- resumed ---\n%s",
			refOut.String(), resOut.String())
	}
}
